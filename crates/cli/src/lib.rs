#![warn(missing_docs)]

//! Library backing the `astra` command-line tool.
//!
//! A deliberately dependency-free argument parser (the approved crate set
//! has no CLI framework) plus one function per subcommand. The binary in
//! `main.rs` is a thin shim so everything here is unit-testable.

pub mod args;
pub mod commands;

pub use args::{parse, Command, ParseError};

/// Run a parsed command, writing human-readable output to `out`.
pub fn run(command: Command, out: &mut dyn std::io::Write) -> std::io::Result<()> {
    if let Some(n) = command.threads() {
        // Pin the planner's parallelism before any parallel call runs.
        // Plans are identical for every thread count (the planner's
        // determinism guarantee); this only changes wall-clock.
        let _ = rayon::ThreadPoolBuilder::new().num_threads(n).build_global();
    }
    match command {
        Command::Workloads => commands::workloads(out),
        Command::Plan(opts) => commands::plan(opts, out),
        Command::Simulate(opts) => commands::simulate(opts, out),
        Command::Baselines { workload, .. } => commands::baselines(workload, out),
        Command::Timeline(opts) => commands::timeline(opts, out),
        Command::Frontier { workload, .. } => commands::frontier(workload, out),
        Command::Help => commands::help(out),
    }
}
