//! Argument parsing for the `astra` binary.

use astra_workloads::WorkloadSpec;

/// Planning/simulation options shared by several subcommands.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOpts {
    /// Which benchmark workload to operate on.
    pub workload: WorkloadSpec,
    /// Budget in dollars (`--budget`), if the user gave one.
    pub budget: Option<f64>,
    /// Deadline in seconds (`--deadline`), if the user gave one.
    pub deadline_s: Option<f64>,
    /// Simulator noise CV (`--noise`, default 0.1 for `simulate`).
    pub noise_cv: f64,
    /// Simulator seed (`--seed`).
    pub seed: u64,
    /// Planner thread-count override (`--threads`); `None` keeps the
    /// `RAYON_NUM_THREADS` / auto-detected default.
    pub threads: Option<usize>,
    /// Write a Chrome-trace JSON of the run to this path (`--trace-out`);
    /// load it in chrome://tracing or Perfetto. See OBSERVABILITY.md.
    pub trace_out: Option<String>,
    /// Print telemetry counters/gauges and the phase-breakdown table
    /// after the command (`--metrics`).
    pub metrics: bool,
}

/// Options for `astra serve` — drive a demo job mix through the
/// in-process service daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOpts {
    /// How many jobs to submit (`--jobs`, default 12).
    pub jobs: usize,
    /// Daemon worker-pool size (`--workers`, default 2).
    pub workers: usize,
    /// Simulation replications per job (`--reps`, default 1; 0 = plan only).
    pub reps: u32,
    /// Simulator noise CV (`--noise`, default 0.1).
    pub noise_cv: f64,
    /// Base simulator seed; job i uses `seed + i` (`--seed`).
    pub seed: u64,
    /// Planner thread-count override (`--threads`).
    pub threads: Option<usize>,
    /// Chrome-trace output path (`--trace-out`).
    pub trace_out: Option<String>,
    /// Print telemetry counters after the run (`--metrics`).
    pub metrics: bool,
    /// Bind the TCP line-protocol listener here (`--listen HOST:PORT`)
    /// and serve until stdin closes, instead of running the demo mix.
    pub listen: Option<String>,
    /// Durable job-journal path (`--journal PATH`): replay it at
    /// startup (recovering jobs from a previous run) and log every
    /// lifecycle transition to it.
    pub journal: Option<String>,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            jobs: 12,
            workers: 2,
            reps: 1,
            noise_cv: 0.1,
            seed: 42,
            threads: None,
            trace_out: None,
            metrics: false,
            listen: None,
            journal: None,
        }
    }
}

/// Options for `astra submit` — one job through a fresh daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitOpts {
    /// The workload/objective/noise/seed options shared with `plan`.
    pub job: JobOpts,
    /// Daemon worker-pool size (`--workers`, default 2).
    pub workers: usize,
    /// Simulation replications (`--reps`, default 1; 0 = plan only).
    pub reps: u32,
    /// Emit the full snapshot as wire JSON instead of the human table
    /// (`--json`).
    pub json: bool,
    /// Submit over TCP to a running `astra serve --listen` server
    /// (`--connect HOST:PORT`) instead of a fresh in-process daemon.
    pub connect: Option<String>,
    /// Tenant name stamped on the request (`--tenant`, default "").
    pub tenant: Option<String>,
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `astra workloads` — list the built-in benchmarks.
    Workloads,
    /// `astra plan --workload W [--budget $ | --deadline s]`.
    Plan(JobOpts),
    /// `astra simulate --workload W [--budget | --deadline] [--noise --seed]`.
    Simulate(JobOpts),
    /// `astra baselines --workload W` — compare against Baselines 1–3.
    Baselines(JobOpts),
    /// `astra timeline --workload W [...]` — ASCII Gantt of a run.
    Timeline(JobOpts),
    /// `astra frontier --workload W` — the cost-performance Pareto
    /// frontier.
    Frontier(JobOpts),
    /// `astra serve [--jobs N --workers N --reps N]` — run a demo job
    /// mix through the in-process service daemon.
    Serve(ServeOpts),
    /// `astra submit --workload W [...]` — submit one job through the
    /// daemon and await its terminal snapshot.
    Submit(SubmitOpts),
    /// `astra help`.
    Help,
}

impl Command {
    /// The shared job options this invocation carries, if any.
    pub fn job_opts(&self) -> Option<&JobOpts> {
        match self {
            Command::Plan(o)
            | Command::Simulate(o)
            | Command::Baselines(o)
            | Command::Timeline(o)
            | Command::Frontier(o) => Some(o),
            Command::Submit(o) => Some(&o.job),
            Command::Workloads | Command::Serve(_) | Command::Help => None,
        }
    }

    /// The `--threads` override this invocation carries, if any.
    pub fn threads(&self) -> Option<usize> {
        match self {
            Command::Serve(o) => o.threads,
            _ => self.job_opts().and_then(|o| o.threads),
        }
    }

    /// The `--trace-out` path this invocation carries, if any.
    pub fn trace_out(&self) -> Option<&str> {
        match self {
            Command::Serve(o) => o.trace_out.as_deref(),
            _ => self.job_opts().and_then(|o| o.trace_out.as_deref()),
        }
    }

    /// Whether `--metrics` was given.
    pub fn metrics(&self) -> bool {
        match self {
            Command::Serve(o) => o.metrics,
            _ => self.job_opts().map(|o| o.metrics).unwrap_or(false),
        }
    }
}

/// Why parsing failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Unknown subcommand.
    UnknownCommand(String),
    /// Unknown or malformed flag.
    BadFlag(String),
    /// A flag that needs a value did not get one.
    MissingValue(String),
    /// Unknown workload name.
    UnknownWorkload(String),
    /// No subcommand given.
    Empty,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnknownCommand(c) => write!(f, "unknown command '{c}' (try 'astra help')"),
            ParseError::BadFlag(x) => write!(f, "unknown flag '{x}'"),
            ParseError::MissingValue(x) => write!(f, "flag '{x}' needs a value"),
            ParseError::UnknownWorkload(w) => write!(
                f,
                "unknown workload '{w}' (try wordcount-1gb, wordcount-10gb, wordcount-20gb, sort-100gb, query)"
            ),
            ParseError::Empty => write!(f, "no command given (try 'astra help')"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse a workload name.
pub fn parse_workload(name: &str) -> Result<WorkloadSpec, ParseError> {
    match name.to_ascii_lowercase().as_str() {
        "wordcount-1gb" | "wc1" => Ok(WorkloadSpec::wordcount_gb(1)),
        "wordcount-10gb" | "wc10" => Ok(WorkloadSpec::wordcount_gb(10)),
        "wordcount-20gb" | "wc20" => Ok(WorkloadSpec::wordcount_gb(20)),
        "sort-100gb" | "sort" => Ok(WorkloadSpec::Sort100),
        "query" | "query-uservisits" => Ok(WorkloadSpec::QueryUservisits),
        other => Err(ParseError::UnknownWorkload(other.to_string())),
    }
}

fn parse_job_opts(args: &[String]) -> Result<JobOpts, ParseError> {
    let mut workload = WorkloadSpec::wordcount_gb(1);
    let mut budget = None;
    let mut deadline = None;
    let mut noise = 0.1;
    let mut seed = 42u64;
    let mut threads = None;
    let mut trace_out = None;
    let mut metrics = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = || -> Result<&String, ParseError> {
            args.get(i + 1)
                .ok_or_else(|| ParseError::MissingValue(flag.to_string()))
        };
        match flag {
            "--workload" | "-w" => {
                workload = parse_workload(value()?)?;
                i += 2;
            }
            "--budget" | "-b" => {
                budget = Some(
                    value()?
                        .parse::<f64>()
                        .map_err(|_| ParseError::BadFlag(flag.to_string()))?,
                );
                i += 2;
            }
            "--deadline" | "-d" => {
                deadline = Some(
                    value()?
                        .parse::<f64>()
                        .map_err(|_| ParseError::BadFlag(flag.to_string()))?,
                );
                i += 2;
            }
            "--noise" => {
                noise = value()?
                    .parse::<f64>()
                    .map_err(|_| ParseError::BadFlag(flag.to_string()))?;
                i += 2;
            }
            "--seed" => {
                seed = value()?
                    .parse::<u64>()
                    .map_err(|_| ParseError::BadFlag(flag.to_string()))?;
                i += 2;
            }
            "--threads" | "-t" => {
                let n = value()?
                    .parse::<usize>()
                    .map_err(|_| ParseError::BadFlag(flag.to_string()))?;
                if n == 0 {
                    return Err(ParseError::BadFlag(flag.to_string()));
                }
                threads = Some(n);
                i += 2;
            }
            "--trace-out" => {
                trace_out = Some(value()?.clone());
                i += 2;
            }
            "--metrics" => {
                metrics = true;
                i += 1;
            }
            other => return Err(ParseError::BadFlag(other.to_string())),
        }
    }
    Ok(JobOpts {
        workload,
        budget,
        deadline_s: deadline,
        noise_cv: noise,
        seed,
        threads,
        trace_out,
        metrics,
    })
}

fn parse_serve_opts(args: &[String]) -> Result<ServeOpts, ParseError> {
    let mut opts = ServeOpts::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = || -> Result<&String, ParseError> {
            args.get(i + 1)
                .ok_or_else(|| ParseError::MissingValue(flag.to_string()))
        };
        let bad = || ParseError::BadFlag(flag.to_string());
        match flag {
            "--jobs" | "-n" => {
                opts.jobs = value()?.parse().map_err(|_| bad())?;
                if opts.jobs == 0 {
                    return Err(bad());
                }
                i += 2;
            }
            "--workers" => {
                opts.workers = value()?.parse().map_err(|_| bad())?;
                if opts.workers == 0 {
                    return Err(bad());
                }
                i += 2;
            }
            "--reps" => {
                opts.reps = value()?.parse().map_err(|_| bad())?;
                i += 2;
            }
            "--noise" => {
                opts.noise_cv = value()?.parse().map_err(|_| bad())?;
                i += 2;
            }
            "--seed" => {
                opts.seed = value()?.parse().map_err(|_| bad())?;
                i += 2;
            }
            "--threads" | "-t" => {
                let n: usize = value()?.parse().map_err(|_| bad())?;
                if n == 0 {
                    return Err(bad());
                }
                opts.threads = Some(n);
                i += 2;
            }
            "--trace-out" => {
                opts.trace_out = Some(value()?.clone());
                i += 2;
            }
            "--metrics" => {
                opts.metrics = true;
                i += 1;
            }
            "--listen" | "-l" => {
                opts.listen = Some(value()?.clone());
                i += 2;
            }
            "--journal" => {
                opts.journal = Some(value()?.clone());
                i += 2;
            }
            other => return Err(ParseError::BadFlag(other.to_string())),
        }
    }
    Ok(opts)
}

fn parse_submit_opts(args: &[String]) -> Result<SubmitOpts, ParseError> {
    // Peel off the submit-specific flags, hand the rest to the shared
    // job-option parser.
    let mut workers = 2usize;
    let mut reps = 1u32;
    let mut json = false;
    let mut connect = None;
    let mut tenant = None;
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = || -> Result<&String, ParseError> {
            args.get(i + 1)
                .ok_or_else(|| ParseError::MissingValue(flag.to_string()))
        };
        let bad = || ParseError::BadFlag(flag.to_string());
        match flag {
            "--workers" => {
                workers = value()?.parse().map_err(|_| bad())?;
                if workers == 0 {
                    return Err(bad());
                }
                i += 2;
            }
            "--reps" => {
                reps = value()?.parse().map_err(|_| bad())?;
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--connect" | "-c" => {
                connect = Some(value()?.clone());
                i += 2;
            }
            "--tenant" => {
                tenant = Some(value()?.clone());
                i += 2;
            }
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }
    Ok(SubmitOpts {
        job: parse_job_opts(&rest)?,
        workers,
        reps,
        json,
        connect,
        tenant,
    })
}

/// Parse an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some(command) = args.first() else {
        return Err(ParseError::Empty);
    };
    let rest = &args[1..];
    match command.as_str() {
        "workloads" => Ok(Command::Workloads),
        "plan" => Ok(Command::Plan(parse_job_opts(rest)?)),
        "simulate" | "sim" => Ok(Command::Simulate(parse_job_opts(rest)?)),
        "baselines" => Ok(Command::Baselines(parse_job_opts(rest)?)),
        "timeline" => Ok(Command::Timeline(parse_job_opts(rest)?)),
        "frontier" => Ok(Command::Frontier(parse_job_opts(rest)?)),
        "serve" => Ok(Command::Serve(parse_serve_opts(rest)?)),
        "submit" => Ok(Command::Submit(parse_submit_opts(rest)?)),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(ParseError::UnknownCommand(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_plan_with_budget() {
        let cmd = parse(&argv("plan --workload sort-100gb --budget 0.25")).unwrap();
        let Command::Plan(opts) = cmd else { panic!() };
        assert_eq!(opts.workload, WorkloadSpec::Sort100);
        assert_eq!(opts.budget, Some(0.25));
        assert_eq!(opts.deadline_s, None);
    }

    #[test]
    fn parses_simulate_with_noise_and_seed() {
        let cmd = parse(&argv("sim -w query --deadline 60 --noise 0.2 --seed 7")).unwrap();
        let Command::Simulate(opts) = cmd else { panic!() };
        assert_eq!(opts.workload, WorkloadSpec::QueryUservisits);
        assert_eq!(opts.deadline_s, Some(60.0));
        assert_eq!(opts.noise_cv, 0.2);
        assert_eq!(opts.seed, 7);
    }

    #[test]
    fn workload_aliases() {
        assert_eq!(parse_workload("wc20").unwrap(), WorkloadSpec::wordcount_gb(20));
        assert_eq!(parse_workload("SORT").unwrap(), WorkloadSpec::Sort100);
        assert!(parse_workload("nope").is_err());
    }

    #[test]
    fn errors_are_reported() {
        assert_eq!(parse(&[]), Err(ParseError::Empty));
        assert!(matches!(
            parse(&argv("frobnicate")),
            Err(ParseError::UnknownCommand(_))
        ));
        assert!(matches!(
            parse(&argv("plan --budget")),
            Err(ParseError::MissingValue(_))
        ));
        assert!(matches!(
            parse(&argv("plan --wat 3")),
            Err(ParseError::BadFlag(_))
        ));
    }

    #[test]
    fn frontier_parses() {
        let cmd = parse(&argv("frontier -w sort")).unwrap();
        let Command::Frontier(opts) = cmd else { panic!() };
        assert_eq!(opts.workload, WorkloadSpec::Sort100);
        assert_eq!(opts.threads, None);
    }

    #[test]
    fn threads_flag_parses_everywhere() {
        let cmd = parse(&argv("plan -w wc1 --threads 4")).unwrap();
        assert_eq!(cmd.threads(), Some(4));
        let Command::Plan(opts) = cmd else { panic!() };
        assert_eq!(opts.threads, Some(4));

        let cmd = parse(&argv("frontier -w sort -t 8")).unwrap();
        assert_eq!(cmd.threads(), Some(8));
        let Command::Frontier(opts) = cmd else { panic!() };
        assert_eq!(opts.workload, WorkloadSpec::Sort100);

        // Default: no override.
        assert_eq!(parse(&argv("plan -w wc1")).unwrap().threads(), None);
        // Zero threads is meaningless.
        assert!(matches!(
            parse(&argv("plan --threads 0")),
            Err(ParseError::BadFlag(_))
        ));
    }

    #[test]
    fn telemetry_flags_parse() {
        let cmd = parse(&argv("sim -w wc1 --trace-out trace.json --metrics")).unwrap();
        assert_eq!(cmd.trace_out(), Some("trace.json"));
        assert!(cmd.metrics());

        // Default: telemetry off.
        let cmd = parse(&argv("sim -w wc1")).unwrap();
        assert_eq!(cmd.trace_out(), None);
        assert!(!cmd.metrics());

        // Available on every job subcommand, e.g. baselines.
        let cmd = parse(&argv("baselines -w sort --metrics")).unwrap();
        assert!(cmd.metrics());

        // --trace-out needs a path.
        assert!(matches!(
            parse(&argv("sim --trace-out")),
            Err(ParseError::MissingValue(_))
        ));
    }

    #[test]
    fn help_parses() {
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn serve_parses_with_defaults_and_overrides() {
        let cmd = parse(&argv("serve")).unwrap();
        let Command::Serve(opts) = cmd else { panic!() };
        assert_eq!(opts, ServeOpts::default());

        let cmd = parse(&argv("serve --jobs 20 --workers 4 --reps 2 --seed 7 --metrics")).unwrap();
        assert!(cmd.metrics());
        let Command::Serve(opts) = cmd else { panic!() };
        assert_eq!(opts.jobs, 20);
        assert_eq!(opts.workers, 4);
        assert_eq!(opts.reps, 2);
        assert_eq!(opts.seed, 7);

        // Telemetry/threads flags ride along like the job subcommands.
        let cmd = parse(&argv("serve -t 4 --trace-out svc.json")).unwrap();
        assert_eq!(cmd.threads(), Some(4));
        assert_eq!(cmd.trace_out(), Some("svc.json"));
        assert!(cmd.job_opts().is_none());

        // Zero jobs or workers is meaningless.
        assert!(matches!(parse(&argv("serve --jobs 0")), Err(ParseError::BadFlag(_))));
        assert!(matches!(parse(&argv("serve --workers 0")), Err(ParseError::BadFlag(_))));
        assert!(matches!(parse(&argv("serve --wat")), Err(ParseError::BadFlag(_))));
    }

    #[test]
    fn submit_parses_job_flags_plus_service_flags() {
        let cmd = parse(&argv("submit -w sort --budget 4 --workers 3 --reps 2 --json --seed 9")).unwrap();
        let Command::Submit(opts) = cmd else { panic!() };
        assert_eq!(opts.job.workload, WorkloadSpec::Sort100);
        assert_eq!(opts.job.budget, Some(4.0));
        assert_eq!(opts.job.seed, 9);
        assert_eq!(opts.workers, 3);
        assert_eq!(opts.reps, 2);
        assert!(opts.json);

        // Defaults, and the shared accessors see the inner JobOpts.
        let cmd = parse(&argv("submit -w wc1 --metrics")).unwrap();
        assert!(cmd.metrics());
        let Command::Submit(opts) = cmd else { panic!() };
        assert_eq!(opts.workers, 2);
        assert_eq!(opts.reps, 1);
        assert!(!opts.json);

        assert!(matches!(parse(&argv("submit --workers")), Err(ParseError::MissingValue(_))));
        assert!(matches!(parse(&argv("submit --wat 3")), Err(ParseError::BadFlag(_))));
    }

    #[test]
    fn serve_listen_parses() {
        let cmd = parse(&argv("serve --listen 127.0.0.1:7878 --workers 4")).unwrap();
        let Command::Serve(opts) = cmd else { panic!() };
        assert_eq!(opts.listen.as_deref(), Some("127.0.0.1:7878"));
        assert_eq!(opts.workers, 4);

        // Default is the in-process demo mix.
        let Command::Serve(opts) = parse(&argv("serve")).unwrap() else {
            panic!()
        };
        assert_eq!(opts.listen, None);

        assert!(matches!(
            parse(&argv("serve --listen")),
            Err(ParseError::MissingValue(_))
        ));
    }

    #[test]
    fn serve_journal_parses() {
        let cmd = parse(&argv("serve --listen 127.0.0.1:0 --journal /tmp/astra.journal")).unwrap();
        let Command::Serve(opts) = cmd else { panic!() };
        assert_eq!(opts.journal.as_deref(), Some("/tmp/astra.journal"));

        let Command::Serve(opts) = parse(&argv("serve")).unwrap() else {
            panic!()
        };
        assert_eq!(opts.journal, None);

        assert!(matches!(
            parse(&argv("serve --journal")),
            Err(ParseError::MissingValue(_))
        ));
    }

    #[test]
    fn submit_connect_and_tenant_parse() {
        let cmd =
            parse(&argv("submit -w wc1 --connect 127.0.0.1:7878 --tenant acme --json")).unwrap();
        let Command::Submit(opts) = cmd else { panic!() };
        assert_eq!(opts.connect.as_deref(), Some("127.0.0.1:7878"));
        assert_eq!(opts.tenant.as_deref(), Some("acme"));
        assert!(opts.json);

        // Defaults: in-process, anonymous tenant.
        let Command::Submit(opts) = parse(&argv("submit -w wc1")).unwrap() else {
            panic!()
        };
        assert_eq!(opts.connect, None);
        assert_eq!(opts.tenant, None);

        assert!(matches!(
            parse(&argv("submit --connect")),
            Err(ParseError::MissingValue(_))
        ));
        assert!(matches!(
            parse(&argv("submit --tenant")),
            Err(ParseError::MissingValue(_))
        ));
    }
}
