//! Implementations of the `astra` subcommands.

use std::io::Write;

use astra_baselines::Baseline;
use astra_core::{Astra, Objective, Plan};
use astra_faas::SimConfig;
use astra_mapreduce::simulate as run_sim;
use astra_model::{JobSpec, Platform};
use astra_pricing::PriceCatalog;
use astra_workloads::WorkloadSpec;

use crate::args::JobOpts;

fn objective_for(opts: &JobOpts) -> Objective {
    match (opts.budget, opts.deadline_s) {
        (Some(b), _) => Objective::min_time_with_budget_dollars(b),
        (None, Some(d)) => Objective::min_cost_with_deadline_s(d),
        (None, None) => Objective::fastest(),
    }
}

fn plan_job(opts: &JobOpts) -> Result<(JobSpec, Plan), String> {
    let job = opts.workload.into_job();
    let astra = Astra::with_defaults();
    let objective = objective_for(opts);
    astra
        .plan(&job, objective)
        .map(|plan| (job, plan))
        .map_err(|e| e.to_string())
}

/// `astra workloads`.
pub fn workloads(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(out, "Built-in benchmark workloads (paper Sec. V):")?;
    for spec in WorkloadSpec::paper_suite() {
        let job = spec.into_job();
        writeln!(
            out,
            "  {:<18} {:>4} objects x {:>7.1} MB  (profile: {})",
            spec.label(),
            job.num_objects(),
            job.object_sizes_mb[0],
            job.profile.name
        )?;
    }
    writeln!(out, "\nNames: wordcount-1gb wordcount-10gb wordcount-20gb sort-100gb query")
}

/// `astra plan`.
pub fn plan(opts: JobOpts, out: &mut dyn Write) -> std::io::Result<()> {
    match plan_job(&opts) {
        Ok((job, plan)) => {
            writeln!(out, "Workload : {}", opts.workload.label())?;
            writeln!(out, "Objective: {}", objective_for(&opts))?;
            writeln!(out, "Plan     : {}", plan.summary())?;
            writeln!(
                out,
                "Phases   : map {:.1}s | coordinator {:.1}s | reduce {:.1}s ({} steps: {:?})",
                plan.evaluation.perf.mapper.duration_s,
                plan.evaluation.perf.coordinator_s(),
                plan.evaluation.perf.reduce.duration_s(),
                plan.reduce_steps(),
                plan.reducers_per_step(),
            )?;
            writeln!(
                out,
                "Cost     : requests {} | storage {} | invocations {} | runtime {}",
                plan.evaluation.cost.requests,
                plan.evaluation.cost.storage,
                plan.evaluation.cost.invocations,
                plan.evaluation.cost.runtime,
            )?;
            let _ = job;
        }
        Err(e) => writeln!(out, "planning failed: {e}")?,
    }
    Ok(())
}

/// `astra simulate`.
pub fn simulate(opts: JobOpts, out: &mut dyn Write) -> std::io::Result<()> {
    match plan_job(&opts) {
        Ok((job, plan)) => {
            let config = SimConfig::deterministic(Platform::aws_lambda()).with_noise(opts.noise_cv, opts.seed);
            match run_sim(&job, &plan, config) {
                Ok(report) => {
                    writeln!(out, "Plan      : {}", plan.summary())?;
                    writeln!(
                        out,
                        "Simulated : JCT {:.1}s (predicted {:.1}s), cost {} (predicted {})",
                        report.jct_s(),
                        plan.predicted_jct_s(),
                        report.total_cost(),
                        plan.predicted_cost(),
                    )?;
                    writeln!(
                        out,
                        "Platform  : {} invocations, peak concurrency {}, {} GETs, {} PUTs",
                        report.invocation_count(),
                        report.peak_concurrency,
                        report.ledger.gets,
                        report.ledger.puts,
                    )?;
                }
                Err(e) => writeln!(out, "simulation failed: {e}")?,
            }
        }
        Err(e) => writeln!(out, "planning failed: {e}")?,
    }
    Ok(())
}

/// `astra baselines`.
pub fn baselines(workload: WorkloadSpec, out: &mut dyn Write) -> std::io::Result<()> {
    let job = workload.into_job();
    let mut relaxed = Platform::aws_lambda();
    relaxed.timeout_s = f64::INFINITY;
    let catalog = PriceCatalog::aws_2020();

    writeln!(out, "Workload: {}\n", workload.label())?;
    writeln!(
        out,
        "{:<12} {:>10} {:>14}  configuration",
        "system", "pred JCT", "pred cost"
    )?;
    let astra = Astra::with_defaults();
    let fastest = astra.plan(&job, Objective::fastest());
    for b in Baseline::all() {
        match Plan::evaluate(&job, &relaxed, &catalog, b.spec_for(&job)) {
            Ok(p) => writeln!(
                out,
                "{:<12} {:>9.1}s {:>14}  {}",
                b.name,
                p.predicted_jct_s(),
                p.predicted_cost().to_string(),
                p.summary()
            )?,
            Err(e) => writeln!(out, "{:<12} infeasible: {e}", b.name)?,
        }
    }
    if let Ok(p) = fastest {
        writeln!(
            out,
            "{:<12} {:>9.1}s {:>14}  {}",
            "Astra",
            p.predicted_jct_s(),
            p.predicted_cost().to_string(),
            p.summary()
        )?;
    }
    Ok(())
}

/// `astra timeline`.
pub fn timeline(opts: JobOpts, out: &mut dyn Write) -> std::io::Result<()> {
    match plan_job(&opts) {
        Ok((job, plan)) => {
            let config = SimConfig::deterministic(Platform::aws_lambda()).with_noise(opts.noise_cv, opts.seed);
            match run_sim(&job, &plan, config) {
                Ok(report) => {
                    writeln!(out, "{} — JCT {:.1}s", plan.summary(), report.jct_s())?;
                    writeln!(out, "legend: c cold-start | r GET | # compute | w PUT | . waiting | q queued\n")?;
                    write!(out, "{}", report.trace.ascii_gantt(100))?;
                }
                Err(e) => writeln!(out, "simulation failed: {e}")?,
            }
        }
        Err(e) => writeln!(out, "planning failed: {e}")?,
    }
    Ok(())
}

/// `astra frontier`.
pub fn frontier(workload: WorkloadSpec, out: &mut dyn Write) -> std::io::Result<()> {
    let job = workload.into_job();
    let astra = Astra::with_defaults();
    match astra.pareto_frontier(&job, 12) {
        Ok(frontier) => {
            writeln!(out, "Cost-performance frontier for {}:\n", workload.label())?;
            writeln!(out, "{:>14} {:>10}  configuration", "spend", "JCT")?;
            for plan in &frontier {
                writeln!(
                    out,
                    "{:>14} {:>9.1}s  {}",
                    plan.predicted_cost().to_string(),
                    plan.predicted_jct_s(),
                    plan.summary()
                )?;
            }
            writeln!(
                out,
                "\n{} distinct plans between the cheapest and the fastest.",
                frontier.len()
            )?;
        }
        Err(e) => writeln!(out, "planning failed: {e}")?,
    }
    Ok(())
}

/// `astra help`.
pub fn help(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "astra — autonomous serverless analytics planner (paper reproduction)

USAGE:
    astra <command> [flags]

COMMANDS:
    workloads                       list the built-in benchmarks
    plan      -w <workload> [...]   derive the optimal execution plan
    simulate  -w <workload> [...]   plan, then execute on the FaaS simulator
    baselines -w <workload>         compare Astra against Baselines 1-3
    timeline  -w <workload> [...]   ASCII Gantt chart of a simulated run
    frontier  -w <workload>         the cost-performance Pareto frontier
    help                            this message

FLAGS:
    -w, --workload <name>   wordcount-1gb|wordcount-10gb|wordcount-20gb|sort-100gb|query
    -b, --budget <dollars>  minimize completion time under this budget
    -d, --deadline <secs>   minimize cost under this completion-time threshold
        --noise <cv>        simulator runtime-noise CV (default 0.1)
        --seed <n>          simulator seed (default 42)
    -t, --threads <n>       planner worker threads (default: all cores;
                            any value yields the same plan)

With neither --budget nor --deadline, astra plans for the fastest execution."
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture(cmd: crate::Command) -> String {
        let mut buf = Vec::new();
        crate::run(cmd, &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn workloads_lists_all_five() {
        let text = capture(crate::Command::Workloads);
        assert!(text.contains("Wordcount (1GB)"));
        assert!(text.contains("Sort (100GB)"));
        assert!(text.contains("Query (25.4GB)"));
    }

    #[test]
    fn plan_reports_a_feasible_plan() {
        let opts = JobOpts {
            workload: WorkloadSpec::wordcount_gb(1),
            budget: Some(0.004),
            deadline_s: None,
            noise_cv: 0.0,
            seed: 1,
            threads: None,
        };
        let text = capture(crate::Command::Plan(opts));
        assert!(text.contains("Plan"), "{text}");
        assert!(text.contains("mappers="), "{text}");
    }

    #[test]
    fn simulate_reports_measured_numbers() {
        let opts = JobOpts {
            workload: WorkloadSpec::wordcount_gb(1),
            budget: None,
            deadline_s: Some(120.0),
            noise_cv: 0.0,
            seed: 1,
            threads: None,
        };
        let text = capture(crate::Command::Simulate(opts));
        assert!(text.contains("Simulated"), "{text}");
        assert!(text.contains("invocations"), "{text}");
    }

    #[test]
    fn baselines_table_includes_astra_row() {
        let text = capture(crate::Command::Baselines {
            workload: WorkloadSpec::wordcount_gb(1),
            threads: None,
        });
        assert!(text.contains("Baseline 1"));
        assert!(text.contains("Astra"));
    }

    #[test]
    fn hopeless_budget_is_reported_not_panicked() {
        let opts = JobOpts {
            workload: WorkloadSpec::wordcount_gb(1),
            budget: Some(0.0000001),
            deadline_s: None,
            noise_cv: 0.0,
            seed: 1,
            threads: None,
        };
        let text = capture(crate::Command::Plan(opts));
        assert!(text.contains("planning failed"), "{text}");
    }

    #[test]
    fn help_mentions_every_command() {
        let text = capture(crate::Command::Help);
        for cmd in ["workloads", "plan", "simulate", "baselines", "timeline", "frontier"] {
            assert!(text.contains(cmd), "missing {cmd}");
        }
    }

    #[test]
    fn frontier_lists_multiple_plans() {
        let text = capture(crate::Command::Frontier {
            workload: WorkloadSpec::wordcount_gb(1),
            threads: Some(2),
        });
        assert!(text.contains("distinct plans"), "{text}");
    }
}
