//! Implementations of the `astra` subcommands.

use std::io::Write;

use astra_baselines::Baseline;
use astra_core::{Astra, Objective, Plan};
use astra_faas::{SimConfig, SimReport};
use astra_mapreduce::simulate as run_sim;
use astra_model::{JobSpec, Platform};
use astra_pricing::PriceCatalog;
use astra_service::net::{NetClient, NetConfig, NetServer, PROTO_VERSION};
use astra_service::{wire, JobRequest, ServiceConfig, ServiceDaemon, SimOptions};
use serde_json::Value;
use astra_workloads::WorkloadSpec;

use crate::args::{JobOpts, ServeOpts, SubmitOpts};

fn objective_for(opts: &JobOpts) -> Objective {
    match (opts.budget, opts.deadline_s) {
        (Some(b), _) => Objective::min_time_with_budget_dollars(b),
        (None, Some(d)) => Objective::min_cost_with_deadline_s(d),
        (None, None) => Objective::fastest(),
    }
}

/// Print the `--metrics` tables: the exclusive phase partition of the
/// makespan (each row is the share of wall-clock where that phase was
/// the highest-priority activity anywhere in the fleet; rows sum exactly
/// to the JCT) and the per-stage cumulative lambda-seconds.
fn phase_table(report: &SimReport, out: &mut dyn Write) -> std::io::Result<()> {
    let breakdown = report.phase_breakdown();
    let total = breakdown.total().as_secs_f64();
    writeln!(out, "\nPhase breakdown (exclusive, rows sum to JCT):")?;
    for (label, d) in breakdown.rows() {
        let secs = d.as_secs_f64();
        let pct = if total > 0.0 { 100.0 * secs / total } else { 0.0 };
        writeln!(out, "  {label:<14} {secs:>9.3}s  {pct:>5.1}%")?;
    }
    writeln!(out, "  {:<14} {:>9.3}s  100.0%", "total (JCT)", total)?;

    writeln!(out, "\nPer-stage cumulative lambda-seconds:")?;
    writeln!(
        out,
        "  {:<14} {:>4} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "stage", "n", "cold", "get", "compute", "put", "wait"
    )?;
    for s in report.stage_breakdown() {
        writeln!(
            out,
            "  {:<14} {:>4} {:>8.3}s {:>8.3}s {:>8.3}s {:>8.3}s {:>8.3}s",
            s.stage,
            s.invocations,
            s.phases.cold_start.as_secs_f64(),
            s.phases.storage_get.as_secs_f64(),
            s.phases.compute.as_secs_f64(),
            s.phases.storage_put.as_secs_f64(),
            s.phases.wait_children.as_secs_f64(),
        )?;
    }
    Ok(())
}

fn plan_job(opts: &JobOpts) -> Result<(JobSpec, Plan), String> {
    let job = opts.workload.into_job();
    let astra = Astra::with_defaults();
    let objective = objective_for(opts);
    astra
        .plan(&job, objective)
        .map(|plan| (job, plan))
        .map_err(|e| e.to_string())
}

/// `astra workloads`.
pub fn workloads(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(out, "Built-in benchmark workloads (paper Sec. V):")?;
    for spec in WorkloadSpec::paper_suite() {
        let job = spec.into_job();
        writeln!(
            out,
            "  {:<18} {:>4} objects x {:>7.1} MB  (profile: {})",
            spec.label(),
            job.num_objects(),
            job.object_sizes_mb[0],
            job.profile.name
        )?;
    }
    writeln!(out, "\nNames: wordcount-1gb wordcount-10gb wordcount-20gb sort-100gb query")
}

/// `astra plan`.
pub fn plan(opts: JobOpts, out: &mut dyn Write) -> std::io::Result<()> {
    match plan_job(&opts) {
        Ok((job, plan)) => {
            writeln!(out, "Workload : {}", opts.workload.label())?;
            writeln!(out, "Objective: {}", objective_for(&opts))?;
            writeln!(out, "Plan     : {}", plan.summary())?;
            writeln!(
                out,
                "Phases   : map {:.1}s | coordinator {:.1}s | reduce {:.1}s ({} steps: {:?})",
                plan.evaluation.perf.mapper.duration_s,
                plan.evaluation.perf.coordinator_s(),
                plan.evaluation.perf.reduce.duration_s(),
                plan.reduce_steps(),
                plan.reducers_per_step(),
            )?;
            writeln!(
                out,
                "Cost     : requests {} | storage {} | invocations {} | runtime {}",
                plan.evaluation.cost.requests,
                plan.evaluation.cost.storage,
                plan.evaluation.cost.invocations,
                plan.evaluation.cost.runtime,
            )?;
            let _ = job;
        }
        Err(e) => writeln!(out, "planning failed: {e}")?,
    }
    Ok(())
}

/// `astra simulate`.
pub fn simulate(opts: JobOpts, out: &mut dyn Write) -> std::io::Result<()> {
    match plan_job(&opts) {
        Ok((job, plan)) => {
            let config = SimConfig::deterministic(Platform::aws_lambda()).with_noise(opts.noise_cv, opts.seed);
            match run_sim(&job, &plan, config) {
                Ok(report) => {
                    writeln!(out, "Plan      : {}", plan.summary())?;
                    writeln!(
                        out,
                        "Simulated : JCT {:.1}s (predicted {:.1}s), cost {} (predicted {})",
                        report.jct_s(),
                        plan.predicted_jct_s(),
                        report.total_cost(),
                        plan.predicted_cost(),
                    )?;
                    writeln!(
                        out,
                        "Platform  : {} invocations, peak concurrency {}, {} GETs, {} PUTs",
                        report.invocation_count(),
                        report.peak_concurrency,
                        report.ledger.gets,
                        report.ledger.puts,
                    )?;
                    if opts.metrics {
                        phase_table(&report, out)?;
                    }
                }
                Err(e) => writeln!(out, "simulation failed: {e}")?,
            }
        }
        Err(e) => writeln!(out, "planning failed: {e}")?,
    }
    Ok(())
}

/// `astra baselines`.
pub fn baselines(opts: JobOpts, out: &mut dyn Write) -> std::io::Result<()> {
    let workload = opts.workload;
    let job = workload.into_job();
    let mut relaxed = Platform::aws_lambda();
    relaxed.timeout_s = f64::INFINITY;
    let catalog = PriceCatalog::aws_2020();

    writeln!(out, "Workload: {}\n", workload.label())?;
    writeln!(
        out,
        "{:<12} {:>10} {:>14}  configuration",
        "system", "pred JCT", "pred cost"
    )?;
    let astra = Astra::with_defaults();
    let fastest = astra.plan(&job, Objective::fastest());
    for b in Baseline::all() {
        match Plan::evaluate(&job, &relaxed, &catalog, b.spec_for(&job)) {
            Ok(p) => writeln!(
                out,
                "{:<12} {:>9.1}s {:>14}  {}",
                b.name,
                p.predicted_jct_s(),
                p.predicted_cost().to_string(),
                p.summary()
            )?,
            Err(e) => writeln!(out, "{:<12} infeasible: {e}", b.name)?,
        }
    }
    if let Ok(p) = fastest {
        writeln!(
            out,
            "{:<12} {:>9.1}s {:>14}  {}",
            "Astra",
            p.predicted_jct_s(),
            p.predicted_cost().to_string(),
            p.summary()
        )?;
    }
    Ok(())
}

/// `astra timeline`.
pub fn timeline(opts: JobOpts, out: &mut dyn Write) -> std::io::Result<()> {
    match plan_job(&opts) {
        Ok((job, plan)) => {
            let config = SimConfig::deterministic(Platform::aws_lambda()).with_noise(opts.noise_cv, opts.seed);
            match run_sim(&job, &plan, config) {
                Ok(report) => {
                    writeln!(out, "{} — JCT {:.1}s", plan.summary(), report.jct_s())?;
                    writeln!(out, "legend: c cold-start | r GET | # compute | w PUT | . waiting | q queued\n")?;
                    write!(out, "{}", report.trace.ascii_gantt(100))?;
                    if opts.metrics {
                        phase_table(&report, out)?;
                    }
                }
                Err(e) => writeln!(out, "simulation failed: {e}")?,
            }
        }
        Err(e) => writeln!(out, "planning failed: {e}")?,
    }
    Ok(())
}

/// `astra frontier`.
pub fn frontier(opts: JobOpts, out: &mut dyn Write) -> std::io::Result<()> {
    let workload = opts.workload;
    let job = workload.into_job();
    // One planner session backs the whole frontier walk: the DAG and its
    // backward potentials are built once, then every budget point is a
    // pure constrained solve.
    let session = Astra::with_defaults().session(&job);
    match session.pareto_frontier(12) {
        Ok(frontier) => {
            writeln!(out, "Cost-performance frontier for {}:\n", workload.label())?;
            writeln!(out, "{:>14} {:>10}  configuration", "spend", "JCT")?;
            for plan in &frontier {
                writeln!(
                    out,
                    "{:>14} {:>9.1}s  {}",
                    plan.predicted_cost().to_string(),
                    plan.predicted_jct_s(),
                    plan.summary()
                )?;
            }
            writeln!(
                out,
                "\n{} distinct plans between the cheapest and the fastest.",
                frontier.len()
            )?;
        }
        Err(e) => writeln!(out, "planning failed: {e}")?,
    }
    Ok(())
}

/// `astra serve --listen` — bind the TCP line-protocol listener and
/// serve until stdin reaches EOF (Ctrl-D, or the parent closing the
/// pipe), then shut down gracefully: first the listener, then the
/// daemon, which drains every queued job to a terminal state.
fn serve_listen(opts: &ServeOpts, addr: &str, out: &mut dyn Write) -> std::io::Result<()> {
    let mut config = ServiceConfig::default().with_workers(opts.workers);
    if let Some(path) = &opts.journal {
        config = config.with_journal_path(path);
    }
    let daemon = ServiceDaemon::start(config);
    let server = NetServer::start(
        daemon.handle(),
        addr,
        NetConfig::default(),
        astra_telemetry::global(),
    )?;
    writeln!(
        out,
        "astra service listening on {} (proto {PROTO_VERSION}, {} workers)",
        server.local_addr(),
        opts.workers
    )?;
    writeln!(
        out,
        "newline-delimited JSON protocol — see PROTOCOL.md; close stdin (Ctrl-D) to stop"
    )?;
    out.flush()?;
    let mut line = String::new();
    loop {
        line.clear();
        match std::io::stdin().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    server.shutdown();
    let drained = daemon.shutdown();
    writeln!(out, "server stopped; daemon drained {} jobs", drained.len())
}

/// `astra serve` — with `--listen`, run the TCP front end; otherwise
/// spin up the in-process service daemon, drive a deterministic demo
/// mix of jobs through it, and print the per-job terminal snapshots
/// plus the session-cache scorecard.
pub fn serve(opts: ServeOpts, out: &mut dyn Write) -> std::io::Result<()> {
    if let Some(addr) = opts.listen.clone() {
        return serve_listen(&opts, &addr, out);
    }
    let mut config = ServiceConfig::default().with_workers(opts.workers);
    if let Some(path) = &opts.journal {
        config = config.with_journal_path(path);
    }
    let daemon = ServiceDaemon::start(config);
    let handle = daemon.handle();
    let families = [
        WorkloadSpec::wordcount_gb(1),
        WorkloadSpec::wordcount_gb(10),
        WorkloadSpec::wordcount_gb(20),
        WorkloadSpec::QueryUservisits,
    ];
    writeln!(
        out,
        "daemon up: {} workers; submitting {} jobs ({} sim reps each)\n",
        opts.workers, opts.jobs, opts.reps
    )?;
    let ids: Vec<_> = (0..opts.jobs)
        .map(|i| {
            let spec = families[i % families.len()];
            let objective = match i % 3 {
                0 => Objective::fastest(),
                1 => Objective::cheapest(),
                _ => Objective::min_time_with_budget_dollars(8.0),
            };
            let request = JobRequest::new(format!("{}#{i}", spec.label()), spec.into_job(), objective)
                .with_sim(SimOptions {
                    noise_cv: opts.noise_cv,
                    seed: opts.seed + i as u64,
                    replications: opts.reps,
                });
            handle.submit(request)
        })
        .collect();

    writeln!(
        out,
        "{:<4} {:<22} {:<9} {:>9} {:>13} {:>9} {:>9} {:>6}",
        "id", "name", "status", "pred JCT", "pred cost", "sim JCT", "wait ms", "cache"
    )?;
    for id in ids {
        let snap = handle.await_done(id).expect("submitted job vanished");
        let (pred_jct, pred_cost) = snap
            .plan
            .as_ref()
            .map(|p| (format!("{:.1}s", p.predicted_jct_s), p.predicted_cost.to_string()))
            .unwrap_or_else(|| ("-".into(), "-".into()));
        let sim_jct = snap
            .sim
            .as_ref()
            .map(|s| format!("{:.1}s", s.mean_jct_s()))
            .unwrap_or_else(|| "-".into());
        writeln!(
            out,
            "{:<4} {:<22} {:<9} {:>9} {:>13} {:>9} {:>9.1} {:>6}",
            snap.id,
            snap.request.name,
            snap.status.as_str(),
            pred_jct,
            pred_cost,
            sim_jct,
            snap.metrics.queue_wait_ns as f64 / 1e6,
            if snap.session_cache_hit { "hit" } else { "miss" },
        )?;
        if let Some(reason) = &snap.reason {
            writeln!(out, "     reason: {reason}")?;
        }
    }

    let stats = handle.cache_stats();
    writeln!(
        out,
        "\nsession cache: {} hits / {} misses / {} evictions ({} live entries)",
        stats.hits, stats.misses, stats.evictions, stats.entries
    )?;
    let drained = daemon.shutdown();
    writeln!(out, "daemon drained cleanly: {} jobs total", drained.len())
}

/// Print the human-readable summary of a wire snapshot (the `job`
/// object of a TCP response line).
fn wire_snapshot_table(job: &Value, out: &mut dyn Write) -> std::io::Result<()> {
    let field = |name: &str| job.as_object().and_then(|o| o.get(name)).cloned();
    let text = |name: &str| {
        field(name)
            .and_then(|v| v.as_str().map(String::from))
            .unwrap_or_else(|| "-".into())
    };
    writeln!(
        out,
        "Job      : {} (id {})",
        text("name"),
        field("id").and_then(|v| v.as_u64()).unwrap_or(0)
    )?;
    writeln!(out, "Status   : {}", text("status"))?;
    if let Some(reason) = field("reason").and_then(|v| v.as_str().map(String::from)) {
        writeln!(out, "Reason   : {reason}")?;
    }
    if let Some(plan) = field("plan").filter(|p| p.as_object().is_some()) {
        let get = |name: &str| plan.as_object().and_then(|o| o.get(name)).cloned();
        if let Some(summary) = get("summary").and_then(|v| v.as_str().map(String::from)) {
            writeln!(out, "Plan     : {summary}")?;
        }
        if let Some(jct) = get("predicted_jct_s").and_then(|v| v.as_f64()) {
            writeln!(out, "Predicted: JCT {jct:.1}s")?;
        }
    }
    if let Some(sim) = field("sim").filter(|s| s.as_object().is_some()) {
        let reps = sim
            .as_object()
            .and_then(|o| o.get("jct_s"))
            .and_then(|v| v.as_array().map(|a| a.len()))
            .unwrap_or(0);
        if let Some(mean) = sim
            .as_object()
            .and_then(|o| o.get("mean_jct_s"))
            .and_then(|v| v.as_f64())
        {
            writeln!(out, "Simulated: mean JCT {mean:.1}s over {reps} reps")?;
        }
    }
    Ok(())
}

/// `astra submit --connect` — the same job over the TCP line protocol:
/// submit, then block on `await` for the terminal snapshot.
fn submit_over_tcp(
    opts: &SubmitOpts,
    addr: &str,
    request: &JobRequest,
    out: &mut dyn Write,
) -> std::io::Result<()> {
    let mut client = NetClient::connect(addr)?;
    let id = client.submit_id(request)?;
    let response = client.await_done(id)?;
    let job = response
        .as_object()
        .and_then(|o| o.get("job"))
        .cloned()
        .ok_or_else(|| {
            std::io::Error::other(format!(
                "malformed await response: {}",
                serde_json::to_string(&response).unwrap_or_default()
            ))
        })?;
    if opts.json {
        let body = serde_json::to_string_pretty(&job)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        return writeln!(out, "{body}");
    }
    wire_snapshot_table(&job, out)
}

/// `astra submit` — one job through a fresh daemon (or, with
/// `--connect`, a running TCP server), blocking until its terminal
/// snapshot.
pub fn submit(opts: SubmitOpts, out: &mut dyn Write) -> std::io::Result<()> {
    let workload = opts.job.workload;
    let mut request =
        JobRequest::new(workload.label(), workload.into_job(), objective_for(&opts.job)).with_sim(
            SimOptions {
                noise_cv: opts.job.noise_cv,
                seed: opts.job.seed,
                replications: opts.reps,
            },
        );
    if let Some(tenant) = &opts.tenant {
        request = request.with_tenant(tenant.clone());
    }
    if let Some(addr) = &opts.connect {
        return submit_over_tcp(&opts, addr, &request, out);
    }
    let daemon = ServiceDaemon::start(ServiceConfig::default().with_workers(opts.workers));
    let handle = daemon.handle();
    let id = handle.submit(request);
    let snap = handle.await_done(id).expect("submitted job vanished");

    if opts.json {
        let body = serde_json::to_string_pretty(&wire::snapshot_to_json(&snap))
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        return writeln!(out, "{body}");
    }

    writeln!(out, "Job      : {} (id {})", snap.request.name, snap.id)?;
    writeln!(out, "Objective: {}", snap.request.objective)?;
    writeln!(out, "Status   : {}", snap.status)?;
    if let Some(reason) = &snap.reason {
        writeln!(out, "Reason   : {reason}")?;
    }
    if let Some(plan) = &snap.plan {
        writeln!(out, "Plan     : {}", plan.summary)?;
        writeln!(
            out,
            "Predicted: JCT {:.1}s, cost {}",
            plan.predicted_jct_s, plan.predicted_cost
        )?;
    }
    if let Some(sim) = &snap.sim {
        writeln!(
            out,
            "Simulated: mean JCT {:.1}s over {} reps (cost {})",
            sim.mean_jct_s(),
            sim.jct_s.len(),
            sim.mean_cost(),
        )?;
    }
    writeln!(
        out,
        "Timing   : queue {:.1}ms, plan {:.1}ms, sim {:.1}ms (session cache {})",
        snap.metrics.queue_wait_ns as f64 / 1e6,
        snap.metrics.plan_ns as f64 / 1e6,
        snap.metrics.sim_ns as f64 / 1e6,
        if snap.session_cache_hit { "hit" } else { "miss" },
    )
}

/// `astra help`.
pub fn help(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "astra — autonomous serverless analytics planner (paper reproduction)

USAGE:
    astra <command> [flags]

COMMANDS:
    workloads                       list the built-in benchmarks
    plan      -w <workload> [...]   derive the optimal execution plan
    simulate  -w <workload> [...]   plan, then execute on the FaaS simulator
    baselines -w <workload>         compare Astra against Baselines 1-3
    timeline  -w <workload> [...]   ASCII Gantt chart of a simulated run
    frontier  -w <workload>         the cost-performance Pareto frontier
    serve     [--listen H:P] [...]  serve the TCP line protocol (or, with
                                    no --listen, run a demo mix in-process)
    submit    -w <workload> [...]   submit one job — to a TCP server with
                                    --connect, else a fresh in-process
                                    daemon — and await its snapshot
    help                            this message

FLAGS:
    -w, --workload <name>   wordcount-1gb|wordcount-10gb|wordcount-20gb|sort-100gb|query
    -b, --budget <dollars>  minimize completion time under this budget
    -d, --deadline <secs>   minimize cost under this completion-time threshold
        --noise <cv>        simulator runtime-noise CV (default 0.1)
        --seed <n>          simulator seed (default 42)
    -t, --threads <n>       planner worker threads (default: all cores;
                            any value yields the same plan)
        --trace-out <path>  write a Chrome trace of the run (open in
                            chrome://tracing or Perfetto); see OBSERVABILITY.md
        --metrics           print telemetry counters and the phase-breakdown
                            table after the command

SERVICE FLAGS (serve/submit):
    -l, --listen <h:p>      serve: bind the TCP listener here (PROTOCOL.md)
                            and run until stdin closes
    -c, --connect <h:p>     submit: speak the line protocol to a running
                            server instead of starting a daemon
        --tenant <name>     submit: tenant lane for the request (fair-share
                            scheduling is per tenant; default \"\")
        --jobs <n>          serve: how many demo jobs to submit (default 12)
        --workers <n>       daemon worker-pool size (default 2)
        --journal <path>    serve: replay this durable job journal on start
                            and log every lifecycle transition to it
        --reps <n>          simulation replications per job (0 = plan only)
        --json              submit: print the terminal snapshot as wire JSON

With neither --budget nor --deadline, astra plans for the fastest execution.
Telemetry is observational: output numbers are identical with it on or off.
Daemon results are bit-identical to the library API at any worker count."
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture(cmd: crate::Command) -> String {
        let mut buf = Vec::new();
        crate::run(cmd, &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    fn opts(workload: WorkloadSpec) -> JobOpts {
        JobOpts {
            workload,
            budget: None,
            deadline_s: None,
            noise_cv: 0.0,
            seed: 1,
            threads: None,
            trace_out: None,
            metrics: false,
        }
    }

    #[test]
    fn workloads_lists_all_five() {
        let text = capture(crate::Command::Workloads);
        assert!(text.contains("Wordcount (1GB)"));
        assert!(text.contains("Sort (100GB)"));
        assert!(text.contains("Query (25.4GB)"));
    }

    #[test]
    fn plan_reports_a_feasible_plan() {
        let opts = JobOpts {
            budget: Some(0.004),
            ..opts(WorkloadSpec::wordcount_gb(1))
        };
        let text = capture(crate::Command::Plan(opts));
        assert!(text.contains("Plan"), "{text}");
        assert!(text.contains("mappers="), "{text}");
    }

    #[test]
    fn simulate_reports_measured_numbers() {
        let opts = JobOpts {
            deadline_s: Some(120.0),
            ..opts(WorkloadSpec::wordcount_gb(1))
        };
        let text = capture(crate::Command::Simulate(opts));
        assert!(text.contains("Simulated"), "{text}");
        assert!(text.contains("invocations"), "{text}");
    }

    // Tests that pass --metrics/--trace-out install the process-global
    // telemetry recorder; serialize them so they don't capture each
    // other's spans or tear the recorder down mid-run.
    static TELEMETRY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn simulate_with_metrics_prints_phase_table_and_counters() {
        let _guard = TELEMETRY_LOCK.lock().unwrap();
        let opts = JobOpts {
            metrics: true,
            ..opts(WorkloadSpec::wordcount_gb(1))
        };
        let text = capture(crate::Command::Simulate(opts));
        assert!(text.contains("Phase breakdown"), "{text}");
        assert!(text.contains("compute"), "{text}");
        assert!(text.contains("total (JCT)"), "{text}");
        assert!(text.contains("Per-stage cumulative"), "{text}");
        assert!(text.contains("mapper"), "{text}");
        assert!(text.contains("-- telemetry --"), "{text}");
        assert!(text.contains("engine.events"), "{text}");
    }

    #[test]
    fn trace_out_writes_a_chrome_trace() {
        let _guard = TELEMETRY_LOCK.lock().unwrap();
        let path = std::env::temp_dir().join("astra-cli-trace-test.json");
        let _ = std::fs::remove_file(&path);
        let opts = JobOpts {
            trace_out: Some(path.to_string_lossy().into_owned()),
            ..opts(WorkloadSpec::wordcount_gb(1))
        };
        let text = capture(crate::Command::Simulate(opts));
        assert!(text.contains("trace written to"), "{text}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"traceEvents\""), "not a Chrome trace");
        assert!(json.contains("invocation"), "missing invocation spans");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn baselines_table_includes_astra_row() {
        let text = capture(crate::Command::Baselines(opts(WorkloadSpec::wordcount_gb(1))));
        assert!(text.contains("Baseline 1"));
        assert!(text.contains("Astra"));
    }

    #[test]
    fn hopeless_budget_is_reported_not_panicked() {
        let opts = JobOpts {
            budget: Some(0.0000001),
            ..opts(WorkloadSpec::wordcount_gb(1))
        };
        let text = capture(crate::Command::Plan(opts));
        assert!(text.contains("planning failed"), "{text}");
    }

    #[test]
    fn help_mentions_every_command() {
        let text = capture(crate::Command::Help);
        for cmd in ["workloads", "plan", "simulate", "baselines", "timeline", "frontier"] {
            assert!(text.contains(cmd), "missing {cmd}");
        }
    }

    #[test]
    fn serve_runs_a_demo_mix_through_the_daemon() {
        let text = capture(crate::Command::Serve(crate::args::ServeOpts {
            jobs: 5,
            workers: 2,
            reps: 1,
            noise_cv: 0.0,
            seed: 1,
            ..crate::args::ServeOpts::default()
        }));
        assert!(text.contains("daemon up: 2 workers"), "{text}");
        assert!(text.contains("DONE"), "{text}");
        assert!(text.contains("session cache:"), "{text}");
        assert!(text.contains("drained cleanly: 5 jobs"), "{text}");
    }

    #[test]
    fn submit_prints_a_terminal_snapshot() {
        let opts = crate::args::SubmitOpts {
            job: opts(WorkloadSpec::wordcount_gb(1)),
            workers: 1,
            reps: 2,
            json: false,
            connect: None,
            tenant: None,
        };
        let text = capture(crate::Command::Submit(opts.clone()));
        assert!(text.contains("Status   : DONE"), "{text}");
        assert!(text.contains("Simulated: mean JCT"), "{text}");
        assert!(text.contains("over 2 reps"), "{text}");

        // --json emits the wire encoding of the same snapshot.
        let json = capture(crate::Command::Submit(crate::args::SubmitOpts { json: true, ..opts }));
        assert!(json.contains("\"status\": \"DONE\""), "{json}");
        assert!(json.contains("\"predicted_cost_nanos\""), "{json}");
    }

    #[test]
    fn submit_over_tcp_round_trips() {
        // A server on an ephemeral port, then `astra submit --connect`
        // against it — the whole CLI TCP path minus the argv parsing.
        let daemon = ServiceDaemon::start(
            ServiceConfig::default()
                .with_workers(1)
                .with_telemetry(astra_telemetry::Telemetry::disabled()),
        );
        let server = NetServer::start(
            daemon.handle(),
            "127.0.0.1:0",
            NetConfig::default(),
            astra_telemetry::Telemetry::disabled(),
        )
        .unwrap();
        let addr = server.local_addr().to_string();

        let submit_opts = crate::args::SubmitOpts {
            job: opts(WorkloadSpec::wordcount_gb(1)),
            workers: 1,
            reps: 1,
            json: true,
            connect: Some(addr),
            tenant: Some("cli-test".into()),
        };
        let text = capture(crate::Command::Submit(submit_opts.clone()));
        assert!(text.contains("\"status\": \"DONE\""), "{text}");
        assert!(text.contains("\"tenant\": \"cli-test\""), "{text}");

        let human = capture(crate::Command::Submit(crate::args::SubmitOpts {
            json: false,
            ..submit_opts
        }));
        assert!(human.contains("Status   : DONE"), "{human}");
        assert!(human.contains("Simulated: mean JCT"), "{human}");

        server.shutdown();
        daemon.shutdown();
    }

    #[test]
    fn frontier_lists_multiple_plans() {
        let text = capture(crate::Command::Frontier(JobOpts {
            threads: Some(2),
            ..opts(WorkloadSpec::wordcount_gb(1))
        }));
        assert!(text.contains("distinct plans"), "{text}");
    }
}
