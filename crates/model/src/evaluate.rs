//! One-call evaluation of a configuration: feasibility, time and cost.

use astra_pricing::{Money, PriceCatalog};
use serde::{Deserialize, Serialize};

use crate::config::JobConfig;
use crate::cost::{full_cost, CostBreakdown};
use crate::job::JobSpec;
use crate::perf::{full_perf, PerfBreakdown};
use crate::platform::Platform;
use crate::schedule;

/// Why a configuration cannot run on the platform (paper constraint
/// Eq. 18 plus the per-function timeout).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Infeasibility {
    /// More parallel lambdas requested than the concurrency limit `R`.
    ConcurrencyExceeded {
        /// Lambdas requested in the widest phase.
        requested: usize,
        /// The platform limit.
        limit: u32,
    },
    /// Job data exceeds the storage cap `O`.
    StorageExceeded {
        /// Peak MB the job stores.
        required_mb: f64,
        /// The platform cap.
        limit_mb: f64,
    },
    /// Some lambda would exceed the execution timeout.
    TimeoutExceeded {
        /// Which lambda ("mapper", "coordinator", "reducer").
        role: &'static str,
        /// Its modelled lifetime.
        lifetime_s: f64,
        /// The platform timeout.
        limit_s: f64,
    },
    /// A memory size that is not an allocatable tier.
    InvalidMemoryTier {
        /// The offending size in MB.
        mem_mb: u32,
    },
}

impl std::fmt::Display for Infeasibility {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Infeasibility::ConcurrencyExceeded { requested, limit } => {
                write!(f, "{requested} concurrent lambdas exceed the limit of {limit}")
            }
            Infeasibility::StorageExceeded {
                required_mb,
                limit_mb,
            } => write!(f, "{required_mb:.0} MB exceeds the {limit_mb:.0} MB storage cap"),
            Infeasibility::TimeoutExceeded {
                role,
                lifetime_s,
                limit_s,
            } => write!(f, "{role} would run {lifetime_s:.1}s, over the {limit_s:.0}s timeout"),
            Infeasibility::InvalidMemoryTier { mem_mb } => {
                write!(f, "{mem_mb} MB is not an allocatable memory size")
            }
        }
    }
}

impl std::error::Error for Infeasibility {}

/// The model's verdict on one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Completion-time breakdown.
    pub perf: PerfBreakdown,
    /// Cost breakdown.
    pub cost: CostBreakdown,
}

impl Evaluation {
    /// Modelled job completion time in seconds.
    pub fn jct_s(&self) -> f64 {
        self.perf.jct_s()
    }

    /// Modelled total bill.
    pub fn total_cost(&self) -> Money {
        self.cost.total()
    }
}

/// Evaluate a configuration end to end, checking the platform constraints
/// the paper's Eq. 18 imposes (concurrency, storage) plus per-function
/// timeouts.
pub fn evaluate(
    job: &JobSpec,
    platform: &Platform,
    config: &JobConfig,
    catalog: &PriceCatalog,
) -> Result<Evaluation, Infeasibility> {
    for mem in [
        config.mapper_mem_mb,
        config.coordinator_mem_mb,
        config.reducer_mem_mb,
    ] {
        if !platform.is_valid_tier(mem) {
            return Err(Infeasibility::InvalidMemoryTier { mem_mb: mem });
        }
    }

    let perf = full_perf(job, platform, config);
    check_feasibility(job, platform, &perf)?;
    let cost = full_cost(job, config, &perf, platform, catalog);
    Ok(Evaluation { perf, cost })
}

/// Check the platform constraints (Eq. 18 plus timeouts) against an
/// already-computed performance breakdown. Factored out so that
/// explicitly-scheduled plans (Baseline 3) get the same checks.
pub fn check_feasibility(
    job: &JobSpec,
    platform: &Platform,
    perf: &PerfBreakdown,
) -> Result<(), Infeasibility> {
    // Concurrency (j mappers is the widest mapper phase; step 1 has the
    // most reducers; the coordinator overlaps reducers).
    let j = perf.mapper.per_mapper_secs.len();
    let max_step_reducers = perf
        .reduce
        .structure
        .steps
        .iter()
        .map(|s| s.reducers())
        .max()
        .unwrap_or(0);
    let widest = j.max(max_step_reducers + 1);
    if widest > platform.max_concurrency as usize {
        return Err(Infeasibility::ConcurrencyExceeded {
            requested: widest,
            limit: platform.max_concurrency,
        });
    }

    // Storage cap (Eq. 18: D + S + Q <= O).
    let state_mb = job.profile.state_object_mb * perf.reduce.structure.num_steps() as f64;
    let required = job.total_mb() + state_mb + schedule::total_input_mb(&perf.reduce.structure.steps);
    if required > platform.max_storage_mb {
        return Err(Infeasibility::StorageExceeded {
            required_mb: required,
            limit_mb: platform.max_storage_mb,
        });
    }

    // Timeouts.
    let slowest_mapper = perf.mapper.duration_s;
    if slowest_mapper > platform.timeout_s {
        return Err(Infeasibility::TimeoutExceeded {
            role: "mapper",
            lifetime_s: slowest_mapper,
            limit_s: platform.timeout_s,
        });
    }
    if perf.coordinator_billed_s() > platform.timeout_s {
        return Err(Infeasibility::TimeoutExceeded {
            role: "coordinator",
            lifetime_s: perf.coordinator_billed_s(),
            limit_s: platform.timeout_s,
        });
    }
    for p in 0..perf.reduce.structure.num_steps() {
        for r in 0..perf.reduce.structure.steps[p].reducers() {
            let t = perf.reduce.reducer_time_s(p, r);
            if t > platform.timeout_s {
                return Err(Infeasibility::TimeoutExceeded {
                    role: "reducer",
                    lifetime_s: t,
                    limit_s: platform.timeout_s,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadProfile;

    fn cfg(mem: u32, k_m: usize, k_r: usize) -> JobConfig {
        JobConfig {
            mapper_mem_mb: mem,
            coordinator_mem_mb: mem,
            reducer_mem_mb: mem,
            objects_per_mapper: k_m,
            objects_per_reducer: k_r,
        }
    }

    #[test]
    fn feasible_configuration_evaluates() {
        let job = JobSpec::uniform("t", 10, 0.2, WorkloadProfile::uniform_test());
        let ev = evaluate(
            &job,
            &Platform::aws_lambda(),
            &cfg(128, 2, 2),
            &PriceCatalog::aws_2020(),
        )
        .unwrap();
        assert!(ev.jct_s() > 0.0);
        assert!(ev.total_cost() > Money::ZERO);
    }

    #[test]
    fn invalid_tier_rejected() {
        let job = JobSpec::uniform("t", 10, 0.2, WorkloadProfile::uniform_test());
        let err = evaluate(
            &job,
            &Platform::aws_lambda(),
            &cfg(100, 2, 2),
            &PriceCatalog::aws_2020(),
        )
        .unwrap_err();
        assert_eq!(err, Infeasibility::InvalidMemoryTier { mem_mb: 100 });
    }

    #[test]
    fn concurrency_limit_enforced() {
        let mut platform = Platform::aws_lambda();
        platform.max_concurrency = 4;
        let job = JobSpec::uniform("t", 10, 0.2, WorkloadProfile::uniform_test());
        let err = evaluate(&job, &platform, &cfg(128, 1, 2), &PriceCatalog::aws_2020()).unwrap_err();
        assert!(matches!(err, Infeasibility::ConcurrencyExceeded { requested: 10, .. }));
    }

    #[test]
    fn timeout_enforced_for_slow_mapper() {
        let mut platform = Platform::paper_literal(10.0);
        platform.timeout_s = 5.0;
        // 1 mapper processing 100 MB at 1 s/MB will far exceed 5 s.
        let job = JobSpec::uniform("t", 2, 50.0, WorkloadProfile::uniform_test());
        let err = evaluate(&job, &platform, &cfg(128, 2, 2), &PriceCatalog::aws_2020()).unwrap_err();
        assert!(matches!(err, Infeasibility::TimeoutExceeded { role: "mapper", .. }));
    }

    #[test]
    fn storage_cap_enforced() {
        let mut platform = Platform::aws_lambda();
        platform.max_storage_mb = 10.0;
        let job = JobSpec::uniform("t", 10, 5.0, WorkloadProfile::uniform_test());
        let err = evaluate(&job, &platform, &cfg(128, 2, 2), &PriceCatalog::aws_2020()).unwrap_err();
        assert!(matches!(err, Infeasibility::StorageExceeded { .. }));
    }

    #[test]
    fn infeasibility_display_is_informative() {
        let e = Infeasibility::TimeoutExceeded {
            role: "reducer",
            lifetime_s: 1000.0,
            limit_s: 900.0,
        };
        assert!(e.to_string().contains("reducer"));
        assert!(e.to_string().contains("900"));
    }
}
