//! Greedy object-to-worker assignment, including the skew the paper
//! observes past the balance point.

/// Assign `n` consecutive objects to workers, `k` per worker, the last
/// worker taking the remainder.
///
/// This reproduces the paper's Sec. II-C observation exactly: for 10
/// objects, "the numbers of objects processed by mappers become (5,5),
/// (6,4), (7,3), (8,2) and (9,1) when the number of objects per lambda is
/// set from 5 to 9" — i.e. workers are filled greedily, which makes large
/// `k` skew the load and lengthen the straggler.
pub fn distribute_counts(n: usize, k: usize) -> Vec<usize> {
    assert!(n > 0, "nothing to distribute");
    assert!(k > 0, "k must be positive");
    let workers = n.div_ceil(k);
    let mut counts = vec![k; workers];
    let remainder = n - k * (workers - 1);
    counts[workers - 1] = remainder;
    counts
}

/// Split `sizes` (per-object MB) into per-worker slices of consecutive
/// objects, `k` objects per worker. Returns each worker's object sizes.
pub fn distribute_sizes(sizes: &[f64], k: usize) -> Vec<Vec<f64>> {
    let counts = distribute_counts(sizes.len(), k);
    let mut out = Vec::with_capacity(counts.len());
    let mut idx = 0;
    for c in counts {
        out.push(sizes[idx..idx + c].to_vec());
        idx += c;
    }
    debug_assert_eq!(idx, sizes.len());
    out
}

/// Split `n` objects across exactly `groups` workers as evenly as possible
/// (sizes differ by at most one). Used by explicitly-specified schedules
/// like Baseline 3's "two reducers each process half of the total objects".
pub fn distribute_even(n: usize, groups: usize) -> Vec<usize> {
    assert!(n > 0, "nothing to distribute");
    assert!(groups > 0 && groups <= n, "need 1..=n groups");
    let base = n / groups;
    let extra = n % groups;
    (0..groups)
        .map(|i| base + usize::from(i < extra))
        .collect()
}

/// Size-aware assignment: Longest-Processing-Time-first (LPT) greedy
/// scheduling of `sizes` onto exactly `workers` workers. Returns each
/// worker's object *indices*, ordered by descending worker load.
///
/// This is the skew-mitigation extension the paper's Sec. II-C
/// observation motivates: the reference framework assigns consecutive
/// objects `k` at a time, so heterogeneous object sizes create
/// stragglers; LPT bounds the makespan within 4/3 of optimal. Not part
/// of the paper's configuration space — evaluated in `exp_skew`.
pub fn assign_lpt(sizes: &[f64], workers: usize) -> Vec<Vec<usize>> {
    assert!(!sizes.is_empty(), "nothing to assign");
    assert!(workers >= 1 && workers <= sizes.len(), "need 1..=n workers");
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by(|&a, &b| sizes[b].total_cmp(&sizes[a]).then(a.cmp(&b)));
    let mut loads = vec![0.0f64; workers];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); workers];
    for idx in order {
        // Least-loaded worker (ties broken by worker index: deterministic).
        let w = (0..workers)
            .min_by(|&a, &b| loads[a].total_cmp(&loads[b]).then(a.cmp(&b)))
            .expect("workers >= 1");
        loads[w] += sizes[idx];
        out[w].push(idx);
    }
    out.sort_by(|a, b| {
        let la: f64 = a.iter().map(|&i| sizes[i]).sum();
        let lb: f64 = b.iter().map(|&i| sizes[i]).sum();
        lb.total_cmp(&la)
    });
    out
}

/// Split `sizes` into exactly `groups` consecutive, near-even slices.
pub fn distribute_sizes_even(sizes: &[f64], groups: usize) -> Vec<Vec<f64>> {
    let counts = distribute_even(sizes.len(), groups);
    let mut out = Vec::with_capacity(groups);
    let mut idx = 0;
    for c in counts {
        out.push(sizes[idx..idx + c].to_vec());
        idx += c;
    }
    debug_assert_eq!(idx, sizes.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn even_distribution_balances() {
        assert_eq!(distribute_even(10, 2), vec![5, 5]);
        assert_eq!(distribute_even(10, 3), vec![4, 3, 3]);
        assert_eq!(distribute_even(3, 3), vec![1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "1..=n groups")]
    fn more_groups_than_objects_rejected() {
        distribute_even(2, 3);
    }

    proptest! {
        #[test]
        fn even_counts_sum_and_balance(n in 1usize..500, g in 1usize..50) {
            prop_assume!(g <= n);
            let counts = distribute_even(n, g);
            prop_assert_eq!(counts.len(), g);
            prop_assert_eq!(counts.iter().sum::<usize>(), n);
            let max = counts.iter().max().unwrap();
            let min = counts.iter().min().unwrap();
            prop_assert!(max - min <= 1);
        }
    }

    #[test]
    fn lpt_balances_skewed_sizes() {
        // Sizes (9,1,...,1): the consecutive k=5 split loads the first
        // worker with 9+1+1+1+1 = 13 MB against 5 MB. LPT pairs the big
        // object with the ninth 1 MB object: 9 vs 9, perfectly balanced.
        let mut sizes = vec![1.0; 10];
        sizes[0] = 9.0;
        let assign = assign_lpt(&sizes, 2);
        let load = |w: &Vec<usize>| w.iter().map(|&i| sizes[i]).sum::<f64>();
        // 18 MB over two workers: both end at 9.
        assert_eq!(load(&assign[0]), 9.0);
        assert_eq!(load(&assign[1]), 9.0);
    }

    #[test]
    fn lpt_covers_every_object_once() {
        let sizes = [5.0, 3.0, 8.0, 1.0, 2.0, 7.0];
        let assign = assign_lpt(&sizes, 3);
        let mut seen: Vec<usize> = assign.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn lpt_is_within_four_thirds_of_lower_bound() {
        // Grahams's bound for LPT: makespan <= (4/3 - 1/3m) * OPT.
        let sizes = [7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 2.0, 1.0];
        let workers = 3;
        let assign = assign_lpt(&sizes, workers);
        let makespan: f64 = assign[0].iter().map(|&i| sizes[i]).sum();
        let lower = (sizes.iter().sum::<f64>() / workers as f64)
            .max(sizes.iter().cloned().fold(0.0, f64::max));
        assert!(makespan <= lower * (4.0 / 3.0) + 1e-9, "{makespan} vs {lower}");
    }

    #[test]
    fn paper_skew_examples() {
        assert_eq!(distribute_counts(10, 5), vec![5, 5]);
        assert_eq!(distribute_counts(10, 6), vec![6, 4]);
        assert_eq!(distribute_counts(10, 7), vec![7, 3]);
        assert_eq!(distribute_counts(10, 8), vec![8, 2]);
        assert_eq!(distribute_counts(10, 9), vec![9, 1]);
    }

    #[test]
    fn balanced_cases() {
        assert_eq!(distribute_counts(10, 1), vec![1; 10]);
        assert_eq!(distribute_counts(10, 2), vec![2; 5]);
        assert_eq!(distribute_counts(9, 3), vec![3, 3, 3]);
    }

    #[test]
    fn k_larger_than_n_gives_single_worker() {
        assert_eq!(distribute_counts(3, 10), vec![3]);
    }

    #[test]
    fn sizes_are_consecutive_slices() {
        let sizes = [1.0, 2.0, 3.0, 4.0, 5.0];
        let split = distribute_sizes(&sizes, 2);
        assert_eq!(split, vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0]]);
    }

    proptest! {
        #[test]
        fn counts_sum_to_n(n in 1usize..500, k in 1usize..60) {
            let counts = distribute_counts(n, k);
            prop_assert_eq!(counts.iter().sum::<usize>(), n);
            prop_assert_eq!(counts.len(), n.div_ceil(k));
            // Every worker but the last is exactly k; the last is 1..=k.
            for &c in &counts[..counts.len() - 1] {
                prop_assert_eq!(c, k);
            }
            let last = *counts.last().unwrap();
            prop_assert!(last >= 1 && last <= k);
        }

        #[test]
        fn size_split_preserves_total(n in 1usize..200, k in 1usize..30) {
            let sizes: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
            let split = distribute_sizes(&sizes, k);
            let total: f64 = split.iter().flatten().sum();
            prop_assert!((total - sizes.iter().sum::<f64>()).abs() < 1e-9);
        }
    }
}
