//! Workload profiles: the per-byte compute intensity and data-reduction
//! behaviour that distinguish Wordcount from Sort from Query.

use serde::{Deserialize, Serialize};

/// Computational and data-flow characteristics of one analytics workload.
///
/// In the paper these coefficients (`u_i`, the mapper output/input
/// proportionality of Sec. III-A1, and the per-step reduction of Table II)
/// are obtained by profiling the real job on AWS; here they are calibrated
/// constants, one set per benchmark (see `astra-workloads::profiles`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Human-readable name ("wordcount", "sort", "query").
    pub name: String,
    /// Seconds for a 128 MB lambda to *map* one MB of input (`u_i` at the
    /// base tier; other tiers scale by `Platform::speed_factor`).
    pub map_secs_per_mb_128: f64,
    /// Seconds for a 128 MB lambda to *reduce* one MB of input.
    pub reduce_secs_per_mb_128: f64,
    /// Seconds for a 128 MB coordinator to plan one MB of shuffle data
    /// (small: the coordinator only does arithmetic over object counts).
    pub coord_secs_per_mb_128: f64,
    /// Mapper output size as a fraction of its input size ("the output
    /// size is proportional to the input size", Sec. III-A1). Wordcount
    /// shrinks data heavily; Sort preserves it (≈ 1.0).
    pub shuffle_ratio: f64,
    /// Each reduce step's total output as a fraction of its total input
    /// (the `q_p` progression of Table II).
    pub reduce_ratio: f64,
    /// Size of the coordinator's per-step reducer-state object in MB
    /// (`l`; the paper assumes 1 MB).
    pub state_object_mb: f64,
    /// Reduce once and stop, instead of funnelling to a single final
    /// reducer. Sec. III always reduces to one object, but the paper's own
    /// Table III shows Sort finishing with 7 reducers in 1 step — a sort's
    /// range-partitioned output needs no final merge. Set for Sort only.
    pub single_pass_reduce: bool,
}

impl WorkloadProfile {
    /// A featureless profile for unit tests: 1 s/MB everywhere, no data
    /// reduction, 1 MB state objects.
    pub fn uniform_test() -> Self {
        WorkloadProfile {
            name: "uniform-test".to_string(),
            map_secs_per_mb_128: 1.0,
            reduce_secs_per_mb_128: 1.0,
            coord_secs_per_mb_128: 0.01,
            shuffle_ratio: 1.0,
            reduce_ratio: 1.0,
            state_object_mb: 1.0,
            single_pass_reduce: false,
        }
    }

    /// Panics if any coefficient is outside its sane range. Called by the
    /// evaluator so a bad calibration fails loudly, not silently.
    pub fn validate(&self) {
        assert!(self.map_secs_per_mb_128 >= 0.0, "negative map intensity");
        assert!(
            self.reduce_secs_per_mb_128 >= 0.0,
            "negative reduce intensity"
        );
        assert!(
            self.coord_secs_per_mb_128 >= 0.0,
            "negative coordinator intensity"
        );
        assert!(
            self.shuffle_ratio > 0.0,
            "shuffle ratio must be positive (mappers must emit something)"
        );
        assert!(
            self.reduce_ratio > 0.0 && self.reduce_ratio <= 1.0,
            "reduce ratio must be in (0, 1]: reducing cannot grow data in this model"
        );
        assert!(self.state_object_mb >= 0.0, "negative state object size");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_test_profile_is_valid() {
        WorkloadProfile::uniform_test().validate();
    }

    #[test]
    #[should_panic(expected = "shuffle ratio")]
    fn zero_shuffle_ratio_rejected() {
        let p = WorkloadProfile {
            shuffle_ratio: 0.0,
            ..WorkloadProfile::uniform_test()
        };
        p.validate();
    }

    #[test]
    #[should_panic(expected = "reduce ratio")]
    fn growing_reduce_ratio_rejected() {
        let p = WorkloadProfile {
            reduce_ratio: 1.5,
            ..WorkloadProfile::uniform_test()
        };
        p.validate();
    }
}
