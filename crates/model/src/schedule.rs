//! The coordinator's reducer-step schedule — paper Table II.

use serde::{Deserialize, Serialize};

use crate::distribute::distribute_sizes;

/// One step of the reducing phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReduceStep {
    /// 1-based step index (`p`).
    pub step: usize,
    /// Per-reducer input object sizes (MB): `assignments[r]` lists the
    /// objects reducer `r` of this step reads.
    pub assignments: Vec<Vec<f64>>,
    /// Per-reducer output size (MB): `reduce_ratio ×` its input total.
    pub output_sizes: Vec<f64>,
}

impl ReduceStep {
    /// Number of reducers launched in this step (`g_p`).
    pub fn reducers(&self) -> usize {
        self.assignments.len()
    }

    /// Number of input objects consumed (`g_{p-1}`, or `j` for step 1).
    pub fn input_objects(&self) -> usize {
        self.assignments.iter().map(Vec::len).sum()
    }

    /// Total input size in MB (`q_{p-1}`).
    pub fn input_mb(&self) -> f64 {
        self.assignments.iter().flatten().sum()
    }

    /// Total output size in MB (`q_p`).
    pub fn output_mb(&self) -> f64 {
        self.output_sizes.iter().sum()
    }
}

/// Compute the full reducing-phase schedule (Table II): starting from the
/// mapper output objects, launch `g_p = ceil(n_p / k_R)` reducers per step
/// until a single reducer produces the final result.
///
/// Per-object sizes are tracked exactly — under mapper skew the first
/// reducers receive larger objects, which is what makes large-`k` configs
/// slow in Fig. 1.
///
/// Convention for `k_R = 1`: a reduce step must combine at least two
/// objects to make progress (`ceil(n/1) = n` would never terminate), so an
/// effective `k_R` of 2 is used. The paper's Table I tabulates `k = 1`
/// without comment; this is the only terminating reading consistent with
/// its Fig. 1 trend (maximum steps, slowest completion at `k = 1`).
pub fn reduce_schedule(mapper_outputs: &[f64], k_r: usize, reduce_ratio: f64) -> Vec<ReduceStep> {
    schedule_steps(mapper_outputs, k_r, reduce_ratio, false)
}

/// Like [`reduce_schedule`], with a `single_pass` mode: reduce every
/// object exactly once and stop, leaving `ceil(j / k_R)` output objects.
/// This is how the paper's Sort benchmark finishes (Table III reports 7
/// reducers in 1 step for 50 mapper outputs at `k_R = 8`) — a
/// range-partitioned sort needs no final merge to one object.
pub fn schedule_steps(
    mapper_outputs: &[f64],
    k_r: usize,
    reduce_ratio: f64,
    single_pass: bool,
) -> Vec<ReduceStep> {
    assert!(!mapper_outputs.is_empty(), "no mapper outputs to reduce");
    assert!(k_r >= 1, "k_R must be at least 1");
    assert!(reduce_ratio > 0.0, "reduce ratio must be positive");
    let k_eff = k_r.max(2);

    let mut steps = Vec::new();
    let mut inputs: Vec<f64> = mapper_outputs.to_vec();
    loop {
        let assignments = distribute_sizes(&inputs, k_eff);
        let output_sizes: Vec<f64> = assignments
            .iter()
            .map(|objs| objs.iter().sum::<f64>() * reduce_ratio)
            .collect();
        let done = single_pass || assignments.len() == 1;
        steps.push(ReduceStep {
            step: steps.len() + 1,
            assignments,
            output_sizes: output_sizes.clone(),
        });
        if done {
            return steps;
        }
        inputs = output_sizes;
    }
}

/// Build a reducing-phase schedule from an explicit per-step reducer count
/// (instead of deriving it from `k_R`). Objects are split as evenly as
/// possible within each step. Used by hand-specified configurations such
/// as Baseline 3 in the paper's evaluation ("1536 MB to three reducer
/// lambdas in two steps, the two reducers in the first step each process
/// half of the total objects").
///
/// Panics unless each step's reducer count is at most its input object
/// count and the final step has exactly one reducer.
pub fn explicit_schedule(
    mapper_outputs: &[f64],
    reducers_per_step: &[usize],
    reduce_ratio: f64,
) -> Vec<ReduceStep> {
    assert!(!mapper_outputs.is_empty(), "no mapper outputs to reduce");
    assert!(!reducers_per_step.is_empty(), "need at least one reduce step");
    assert_eq!(
        *reducers_per_step.last().unwrap(),
        1,
        "final step must have exactly one reducer"
    );
    let mut steps = Vec::with_capacity(reducers_per_step.len());
    let mut inputs: Vec<f64> = mapper_outputs.to_vec();
    for (idx, &g) in reducers_per_step.iter().enumerate() {
        assert!(
            g >= 1 && g <= inputs.len(),
            "step {} wants {g} reducers for {} objects",
            idx + 1,
            inputs.len()
        );
        let assignments = crate::distribute::distribute_sizes_even(&inputs, g);
        let output_sizes: Vec<f64> = assignments
            .iter()
            .map(|objs| objs.iter().sum::<f64>() * reduce_ratio)
            .collect();
        steps.push(ReduceStep {
            step: idx + 1,
            assignments,
            output_sizes: output_sizes.clone(),
        });
        inputs = output_sizes;
    }
    steps
}

/// Total number of reducers across all steps (`g = Σ g_p`).
pub fn total_reducers(steps: &[ReduceStep]) -> usize {
    steps.iter().map(ReduceStep::reducers).sum()
}

/// Total reducing-phase input volume (`Q = Σ_{p=0}^{P-1} q_p`, Eq. 9's
/// read volume).
pub fn total_input_mb(steps: &[ReduceStep]) -> f64 {
    steps.iter().map(ReduceStep::input_mb).sum()
}

/// Total reducing-phase output volume (`R = Σ_{p=1}^{P} q_p`).
pub fn total_output_mb(steps: &[ReduceStep]) -> f64 {
    steps.iter().map(ReduceStep::output_mb).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn uniform(n: usize) -> Vec<f64> {
        vec![1.0; n]
    }

    /// Paper Table I: step structure for 10 input objects as `k` varies.
    #[test]
    fn table_one_step_structure() {
        // k = 2: 5 mapper outputs -> 3, 2, 1 reducers.
        let s = reduce_schedule(&uniform(5), 2, 1.0);
        assert_eq!(
            s.iter().map(ReduceStep::reducers).collect::<Vec<_>>(),
            vec![3, 2, 1]
        );
        // k = 3: 4 outputs -> 2, 1.
        let s = reduce_schedule(&uniform(4), 3, 1.0);
        assert_eq!(
            s.iter().map(ReduceStep::reducers).collect::<Vec<_>>(),
            vec![2, 1]
        );
        // k = 4: 3 outputs -> 1.
        let s = reduce_schedule(&uniform(3), 4, 1.0);
        assert_eq!(s.iter().map(ReduceStep::reducers).collect::<Vec<_>>(), vec![1]);
        // k = 5: 2 outputs -> 1.
        let s = reduce_schedule(&uniform(2), 5, 1.0);
        assert_eq!(s.iter().map(ReduceStep::reducers).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn k_one_uses_effective_two() {
        // 10 mapper outputs, k_R = 1 -> 5, 3, 2, 1 (the most steps).
        let s = reduce_schedule(&uniform(10), 1, 1.0);
        assert_eq!(
            s.iter().map(ReduceStep::reducers).collect::<Vec<_>>(),
            vec![5, 3, 2, 1]
        );
    }

    #[test]
    fn single_mapper_output_still_reduces_once() {
        let s = reduce_schedule(&[4.0], 8, 0.5);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].reducers(), 1);
        assert_eq!(s[0].output_mb(), 2.0);
    }

    #[test]
    fn volumes_shrink_by_reduce_ratio() {
        let s = reduce_schedule(&uniform(8), 2, 0.5);
        // Step 1 reads 8 MB, writes 4 MB; step 2 reads 4, writes 2; ...
        assert_eq!(s[0].input_mb(), 8.0);
        assert_eq!(s[0].output_mb(), 4.0);
        assert_eq!(s[1].input_mb(), 4.0);
        assert_eq!(s[1].output_mb(), 2.0);
    }

    #[test]
    fn skewed_sizes_flow_to_first_reducer() {
        // Mapper skew: outputs (9, 1). One step with k_R = 2.
        let s = reduce_schedule(&[9.0, 1.0], 2, 1.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].assignments, vec![vec![9.0, 1.0]]);
    }

    #[test]
    fn totals_match_paper_symbols() {
        let s = reduce_schedule(&uniform(5), 2, 1.0);
        // g = 3 + 2 + 1
        assert_eq!(total_reducers(&s), 6);
        // Q = q0 + q1 + q2 = 5 + 3... with ratio 1.0 all volumes stay 5.
        assert_eq!(total_input_mb(&s), 15.0);
        assert_eq!(total_output_mb(&s), 15.0);
    }

    #[test]
    fn explicit_schedule_baseline3_shape() {
        // 10 mapper outputs, steps (2, 1): the Baseline 3 layout.
        let s = explicit_schedule(&uniform(10), &[2, 1], 1.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].reducers(), 2);
        // "each process half of the total objects"
        assert_eq!(s[0].assignments[0].len(), 5);
        assert_eq!(s[0].assignments[1].len(), 5);
        assert_eq!(s[1].reducers(), 1);
        assert_eq!(s[1].input_objects(), 2);
    }

    #[test]
    #[should_panic(expected = "final step must have exactly one reducer")]
    fn explicit_schedule_must_end_with_one() {
        explicit_schedule(&uniform(4), &[2, 2], 1.0);
    }

    #[test]
    #[should_panic(expected = "wants 5 reducers")]
    fn explicit_schedule_rejects_too_many_reducers() {
        explicit_schedule(&uniform(4), &[5, 1], 1.0);
    }

    proptest! {
        #[test]
        fn terminates_with_single_final_reducer(n in 1usize..300, k in 1usize..40, ratio in 0.1f64..1.0) {
            let s = reduce_schedule(&uniform(n), k, ratio);
            prop_assert_eq!(s.last().unwrap().reducers(), 1);
            // Reducer counts strictly decrease step over step.
            for w in s.windows(2) {
                prop_assert!(w[1].reducers() < w[0].reducers());
            }
            // Each step consumes exactly the previous step's outputs.
            for w in s.windows(2) {
                prop_assert_eq!(w[1].input_objects(), w[0].reducers());
                prop_assert!((w[1].input_mb() - w[0].output_mb()).abs() < 1e-9);
            }
            // First step consumes all mapper outputs.
            prop_assert_eq!(s[0].input_objects(), n);
        }

        #[test]
        fn step_count_is_logarithmic(n in 2usize..1000, k in 2usize..20) {
            let s = reduce_schedule(&uniform(n), k, 1.0);
            let bound = (n as f64).log(k as f64).ceil() as usize + 1;
            prop_assert!(s.len() <= bound, "steps {} bound {bound}", s.len());
        }
    }
}
