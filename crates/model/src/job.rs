//! A job to plan: its input objects and workload profile.

use serde::{Deserialize, Serialize};

use crate::workload::WorkloadProfile;

/// One analytics job: `N` input objects of known sizes (stored in the
/// object store before submission) plus the workload's profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Job name, used for object-key prefixes and reports.
    pub name: String,
    /// Size in MB of each input object (`N = object_sizes_mb.len()`,
    /// `D = sum`).
    pub object_sizes_mb: Vec<f64>,
    /// The workload's compute/data-flow profile.
    pub profile: WorkloadProfile,
}

impl JobSpec {
    /// A job over `n` uniform objects of `size_mb` each.
    pub fn uniform(
        name: impl Into<String>,
        n: usize,
        size_mb: f64,
        profile: WorkloadProfile,
    ) -> Self {
        assert!(n > 0, "a job needs at least one input object");
        assert!(size_mb > 0.0, "objects must be non-empty");
        JobSpec {
            name: name.into(),
            object_sizes_mb: vec![size_mb; n],
            profile,
        }
    }

    /// Number of input objects (`N`).
    pub fn num_objects(&self) -> usize {
        self.object_sizes_mb.len()
    }

    /// Total input size in MB (`D`).
    pub fn total_mb(&self) -> f64 {
        self.object_sizes_mb.iter().sum()
    }

    /// Total shuffle (mapper-output) size in MB (`S = alpha * D`).
    pub fn shuffle_mb(&self) -> f64 {
        self.total_mb() * self.profile.shuffle_ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_job_totals() {
        let j = JobSpec::uniform("t", 10, 0.2, WorkloadProfile::uniform_test());
        assert_eq!(j.num_objects(), 10);
        assert!((j.total_mb() - 2.0).abs() < 1e-12);
        assert!((j.shuffle_mb() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shuffle_scales_with_ratio() {
        let mut p = WorkloadProfile::uniform_test();
        p.shuffle_ratio = 0.1;
        let j = JobSpec::uniform("t", 4, 25.0, p);
        assert!((j.shuffle_mb() - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one input object")]
    fn empty_job_rejected() {
        JobSpec::uniform("t", 0, 1.0, WorkloadProfile::uniform_test());
    }
}
