//! The configuration vector the planner optimizes over.

use serde::{Deserialize, Serialize};

/// One point in the paper's configuration space: three memory choices plus
/// the two data-partitioning knobs.
///
/// Together with the job spec this determines everything else — the number
/// of mappers `j = ceil(N / objects_per_mapper)`, the reducer-step schedule
/// of Table II, and through them the completion time and cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JobConfig {
    /// Memory tier for every mapper lambda (the `x_i` choice, MB).
    pub mapper_mem_mb: u32,
    /// Memory tier for the coordinator lambda (the `y_a` choice, MB).
    pub coordinator_mem_mb: u32,
    /// Memory tier for every reducer lambda (the `z_s` choice, MB).
    pub reducer_mem_mb: u32,
    /// Objects processed per mapper (`k_M`).
    pub objects_per_mapper: usize,
    /// Objects processed per reducer in each step (`k_R`).
    pub objects_per_reducer: usize,
}

impl JobConfig {
    /// Number of mappers this configuration launches for `n` input objects
    /// (`j = ceil(N / k_M)`).
    pub fn num_mappers(&self, n_objects: usize) -> usize {
        n_objects.div_ceil(self.objects_per_mapper.max(1)).max(1)
    }

    /// Panics unless the partitioning knobs are positive.
    pub fn validate(&self) {
        assert!(self.objects_per_mapper >= 1, "k_M must be at least 1");
        assert!(self.objects_per_reducer >= 1, "k_R must be at least 1");
        assert!(self.mapper_mem_mb > 0 && self.coordinator_mem_mb > 0 && self.reducer_mem_mb > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(k_m: usize) -> JobConfig {
        JobConfig {
            mapper_mem_mb: 128,
            coordinator_mem_mb: 128,
            reducer_mem_mb: 128,
            objects_per_mapper: k_m,
            objects_per_reducer: 2,
        }
    }

    #[test]
    fn mapper_count_is_ceiling_division() {
        // Table I: 10 objects, k_M = 2 -> 5 mappers; k_M = 3 -> 4; k_M = 4 -> 3.
        assert_eq!(cfg(1).num_mappers(10), 10);
        assert_eq!(cfg(2).num_mappers(10), 5);
        assert_eq!(cfg(3).num_mappers(10), 4);
        assert_eq!(cfg(4).num_mappers(10), 3);
        assert_eq!(cfg(5).num_mappers(10), 2);
    }

    #[test]
    fn oversized_k_m_gives_one_mapper() {
        assert_eq!(cfg(100).num_mappers(10), 1);
    }
}
