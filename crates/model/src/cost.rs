//! Monetary-cost model — paper Sec. III-B (Eq. 10–15).
//!
//! Costs are computed as exact [`Money`] amounts from the same phase
//! breakdowns the performance model produces. The functions are grouped
//! the way the planner's Fig. 5 DAG assigns them to edges, so that the sum
//! of edge costs along any path equals [`full_cost`] of the corresponding
//! configuration *exactly* — the property the planner's optimality proof
//! rests on (and which `astra-core`'s tests assert).

use astra_pricing::{LambdaPricing, Money, PriceCatalog};
use serde::{Deserialize, Serialize};

use crate::config::JobConfig;
use crate::job::JobSpec;
use crate::perf::{MapperPhase, PerfBreakdown, ReduceStructure, ReduceTierTimes};
use crate::platform::Platform;
use crate::schedule;

/// Price of one ephemeral-store read.
pub fn inter_get_price(platform: &Platform, catalog: &PriceCatalog) -> Money {
    match &platform.intermediate {
        None => catalog.s3.per_get,
        Some(c) => c.per_get,
    }
}

/// Price of one ephemeral-store write.
pub fn inter_put_price(platform: &Platform, catalog: &PriceCatalog) -> Money {
    match &platform.intermediate {
        None => catalog.s3.per_put,
        Some(c) => c.per_put,
    }
}

/// Charge for holding `size_mb` of ephemeral data for `secs` seconds.
pub fn inter_storage_cost(
    platform: &Platform,
    catalog: &PriceCatalog,
    size_mb: f64,
    secs: f64,
) -> Money {
    match &platform.intermediate {
        None => catalog.s3.storage_cost(size_mb, (secs * 1e6).round() as u64),
        Some(c) => c.storage_cost(size_mb, secs),
    }
}

/// Rental charge for the intermediate store over `secs` modelled seconds
/// (zero for pay-per-use stores). Billed per phase so that the DAG's
/// per-edge decomposition stays exact.
pub fn rental_cost(platform: &Platform, secs: f64) -> Money {
    match &platform.intermediate {
        None => Money::ZERO,
        Some(c) => c.rental_cost(secs),
    }
}

/// Lambda runtime charge (no invocation fee) for one execution of
/// `secs` seconds at `mem_mb`, with billing-granularity rounding.
pub fn runtime_cost(secs: f64, mem_mb: u32, lambda: &LambdaPricing) -> Money {
    lambda.runtime_cost(mem_mb, (secs * 1e6).round() as u64)
}

/// Total runtime charge for a fleet of executions, pricing each run of
/// bit-identical durations once and multiplying by its length. Equals
/// the per-execution sum exactly — [`Money`] amounts are integers, so
/// `x + x + … + x == x * m` — while evaluating the billing model
/// `O(runs)` times instead of `O(executions)`: under an even split all
/// workers but the remainder-holding last share one duration.
fn runtime_sum(secs: &[f64], mem_mb: u32, lambda: &LambdaPricing) -> Money {
    let mut total = Money::ZERO;
    let mut i = 0;
    while i < secs.len() {
        let t = secs[i];
        let mut run = 1usize;
        while i + run < secs.len() && secs[i + run].to_bits() == t.to_bits() {
            run += 1;
        }
        total += runtime_cost(t, mem_mb, lambda) * run as u64;
        i += run;
    }
    total
}

/// Everything the mapping phase costs (`U1 + V1 + W1`, Eq. 10/11/13):
/// `N` GETs + `j` PUTs, input storage during `T1`, per-mapper billed
/// runtime, and `j` invocation fees.
///
/// `job_total_mb` must be `job.total_mb()` — passed in so the planner's
/// DAG builder can amortize the `O(N)` size scan across its hundreds of
/// thousands of edge evaluations instead of repeating it per call.
pub fn mapper_edge_cost(
    job: &JobSpec,
    phase: &MapperPhase,
    mem_mb: u32,
    platform: &Platform,
    catalog: &PriceCatalog,
    job_total_mb: f64,
) -> Money {
    let j = phase.per_mapper_secs.len() as u64;
    // Inputs are read from S3; the shuffle objects are ephemeral writes.
    let requests =
        catalog.s3.get_cost(job.num_objects() as u64) + inter_put_price(platform, catalog) * j;
    let storage = catalog
        .s3
        .storage_cost(job_total_mb, (phase.duration_s * 1e6).round() as u64);
    let runtime = runtime_sum(&phase.per_mapper_secs, mem_mb, &catalog.lambda);
    let invocations = catalog.lambda.per_invocation * j;
    requests + storage + runtime + invocations + rental_cost(platform, phase.duration_s)
}

/// Request + invocation costs of the coordinator and all reducers
/// (`U2 + UP + I2 + I3`, Eq. 10/12): independent of every memory choice,
/// they live on the planner DAG's second edge set.
///
/// Per the reference framework (and deviation note #4 in the crate docs),
/// each reducer GETs the step's state object in addition to its `k_R`
/// input objects.
pub fn orchestration_requests_cost(
    structure: &ReduceStructure,
    platform: &Platform,
    catalog: &PriceCatalog,
) -> Money {
    let p = structure.num_steps() as u64;
    let g = structure.total_reducers() as u64;
    let input_gets: u64 = structure
        .steps
        .iter()
        .map(|s| s.input_objects() as u64)
        .sum();
    // Everything the reducing phase touches is ephemeral data.
    let coord_puts = inter_put_price(platform, catalog) * p; // one state object per step
    let reducer_gets = inter_get_price(platform, catalog) * (input_gets + g); // inputs + state
    let reducer_puts = inter_put_price(platform, catalog) * g; // one output each
    let invocations = catalog.lambda.per_invocation * (g + 1); // reducers + coordinator
    coord_puts + reducer_gets + reducer_puts + invocations
}

/// Storage cost during the coordinator window (`V2`, Eq. 11): input `D`,
/// state objects `S`, and the reducing phase's pending input volume `Q`,
/// held for `T2` seconds.
///
/// `job_total_mb` must be `job.total_mb()` and `pending_input_mb` must
/// be `schedule::total_input_mb(&structure.steps)` — both hoisted to the
/// caller because this runs once per coordinator tier and the inputs
/// depend only on the job and the `(k_M, k_R)` structure.
pub fn coordinator_storage_cost(
    job: &JobSpec,
    structure: &ReduceStructure,
    t2_s: f64,
    platform: &Platform,
    catalog: &PriceCatalog,
    job_total_mb: f64,
    pending_input_mb: f64,
) -> Money {
    let state_mb = job.profile.state_object_mb * structure.num_steps() as f64;
    // Input objects stay in S3; the pending shuffle volume and state
    // objects are ephemeral.
    catalog
        .s3
        .storage_cost(job_total_mb, (t2_s * 1e6).round() as u64)
        + inter_storage_cost(platform, catalog, state_mb + pending_input_mb, t2_s)
        + rental_cost(platform, t2_s)
}

/// Everything the reducing phase costs at reducer tier `reducer_mem_mb`,
/// plus the coordinator's full billed runtime at `coord_mem_mb`
/// (`VP + WP + W2`, Eq. 11/14/15). The coordinator's bill lands here, on
/// the planner DAG's final edge set, because its waiting time depends on
/// the reducer tier chosen (see `astra-core::dag`).
///
/// `job_total_mb` must be `job.total_mb()` (see [`mapper_edge_cost`]).
#[allow(clippy::too_many_arguments)] // mirrors the DAG edge's full context
pub fn reduce_edge_cost(
    job: &JobSpec,
    structure: &ReduceStructure,
    times: &ReduceTierTimes,
    reducer_mem_mb: u32,
    coord_mem_mb: u32,
    coordinator_billed_s: f64,
    platform: &Platform,
    catalog: &PriceCatalog,
    job_total_mb: f64,
) -> Money {
    let state_mb = job.profile.state_object_mb * structure.num_steps() as f64;
    let r = schedule::total_output_mb(&structure.steps);
    let tp = times.duration_s();
    let storage = catalog
        .s3
        .storage_cost(job_total_mb, (tp * 1e6).round() as u64)
        + inter_storage_cost(platform, catalog, state_mb + r, tp)
        + rental_cost(platform, tp);
    let mut reducer_runtime = Money::ZERO;
    for step in &times.per_reducer_s {
        reducer_runtime += runtime_sum(step, reducer_mem_mb, &catalog.lambda);
    }
    let coord_runtime = runtime_cost(coordinator_billed_s, coord_mem_mb, &catalog.lambda);
    storage + reducer_runtime + coord_runtime
}

/// Cost of one configuration, decomposed along the paper's four axes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// S3 GET/PUT request charges (`U1 + U2 + UP`).
    pub requests: Money,
    /// S3 storage charges (`V1 + V2 + VP`).
    pub storage: Money,
    /// Lambda invocation fees (`I1 + I2 + I3`).
    pub invocations: Money,
    /// Lambda runtime charges (the `v · T` parts of `W`).
    pub runtime: Money,
}

impl CostBreakdown {
    /// Total bill (the Eq. 20 objective).
    pub fn total(&self) -> Money {
        self.requests + self.storage + self.invocations + self.runtime
    }
}

/// Legacy alias used by the experiment harness.
pub type CostParams = PriceCatalog;

/// Evaluate the full cost model for one configuration whose performance
/// breakdown has already been computed.
pub fn full_cost(
    job: &JobSpec,
    config: &JobConfig,
    perf: &PerfBreakdown,
    platform: &Platform,
    catalog: &PriceCatalog,
) -> CostBreakdown {
    let structure = &perf.reduce.structure;
    let j = perf.mapper.per_mapper_secs.len() as u64;
    let g = structure.total_reducers() as u64;
    let p = structure.num_steps() as u64;
    let input_gets: u64 = structure
        .steps
        .iter()
        .map(|s| s.input_objects() as u64)
        .sum();

    let requests = catalog.s3.get_cost(job.num_objects() as u64)
        + inter_put_price(platform, catalog) * j
        + inter_put_price(platform, catalog) * p
        + inter_get_price(platform, catalog) * (input_gets + g)
        + inter_put_price(platform, catalog) * g;

    let state_mb = job.profile.state_object_mb * p as f64;
    let q = schedule::total_input_mb(&structure.steps);
    let r = schedule::total_output_mb(&structure.steps);
    let t1 = perf.mapper.duration_s;
    let t2 = perf.coordinator_s();
    let tp = perf.reduce.duration_s();
    let total_mb = job.total_mb();
    let storage = catalog
        .s3
        .storage_cost(total_mb, (t1 * 1e6).round() as u64)
        + catalog.s3.storage_cost(total_mb, (t2 * 1e6).round() as u64)
        + inter_storage_cost(platform, catalog, state_mb + q, t2)
        + catalog.s3.storage_cost(total_mb, (tp * 1e6).round() as u64)
        + inter_storage_cost(platform, catalog, state_mb + r, tp)
        + rental_cost(platform, t1)
        + rental_cost(platform, t2)
        + rental_cost(platform, tp);

    let invocations = catalog.lambda.per_invocation * (j + 1 + g);

    let mut runtime: Money = perf
        .mapper
        .per_mapper_secs
        .iter()
        .map(|&t| runtime_cost(t, config.mapper_mem_mb, &catalog.lambda))
        .sum();
    runtime += runtime_cost(
        perf.coordinator_billed_s(),
        config.coordinator_mem_mb,
        &catalog.lambda,
    );
    for step in 0..structure.num_steps() {
        for r_idx in 0..structure.steps[step].reducers() {
            runtime += runtime_cost(
                perf.reduce.reducer_time_s(step, r_idx),
                config.reducer_mem_mb,
                &catalog.lambda,
            );
        }
    }

    CostBreakdown {
        requests,
        storage,
        invocations,
        runtime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::full_perf;
    use crate::platform::Platform;
    use crate::workload::WorkloadProfile;

    fn setup(
        n: usize,
        k_m: usize,
        k_r: usize,
        mem: u32,
    ) -> (JobSpec, JobConfig, PerfBreakdown) {
        let job = JobSpec::uniform("t", n, 1.0, WorkloadProfile::uniform_test());
        let config = JobConfig {
            mapper_mem_mb: mem,
            coordinator_mem_mb: mem,
            reducer_mem_mb: mem,
            objects_per_mapper: k_m,
            objects_per_reducer: k_r,
        };
        let perf = full_perf(&job, &Platform::paper_literal(10.0), &config);
        (job, config, perf)
    }

    #[test]
    fn edge_decomposition_equals_full_cost() {
        let catalog = PriceCatalog::aws_2020();
        for (n, k_m, k_r, mem) in [(10, 2, 2, 128), (10, 3, 4, 1024), (7, 1, 3, 512), (1, 1, 2, 128)]
        {
            let (job, config, perf) = setup(n, k_m, k_r, mem);
            let platform = Platform::paper_literal(10.0);
            let total_mb = job.total_mb();
            let e1 = mapper_edge_cost(
                &job,
                &perf.mapper,
                config.mapper_mem_mb,
                &platform,
                &catalog,
                total_mb,
            );
            let e2 = orchestration_requests_cost(&perf.reduce.structure, &platform, &catalog);
            let e3 = coordinator_storage_cost(
                &job,
                &perf.reduce.structure,
                perf.coordinator_s(),
                &platform,
                &catalog,
                total_mb,
                schedule::total_input_mb(&perf.reduce.structure.steps),
            );
            let e4 = reduce_edge_cost(
                &job,
                &perf.reduce.structure,
                &perf.reduce.times,
                config.reducer_mem_mb,
                config.coordinator_mem_mb,
                perf.coordinator_billed_s(),
                &platform,
                &catalog,
                total_mb,
            );
            let total = full_cost(&job, &config, &perf, &platform, &catalog).total();
            assert_eq!(
                e1 + e2 + e3 + e4,
                total,
                "decomposition mismatch for n={n} k_m={k_m} k_r={k_r} mem={mem}"
            );
        }
    }

    #[test]
    fn request_counts_match_eq_10() {
        // 10 objects, k_M = 2 (j = 5 mappers), k_R = 2 -> steps (3,2,1), g = 6.
        let catalog = PriceCatalog::aws_2020();
        let (job, config, perf) = setup(10, 2, 2, 128);
        let b = full_cost(&job, &config, &perf, &Platform::paper_literal(10.0), &catalog);
        // GETs: 10 (mapper inputs) + inputs per step (5+3+2=10) + state (6) = 26.
        // PUTs: 5 (mappers) + 3 (state) + 6 (reducers) = 14.
        let expected = catalog.s3.get_cost(26) + catalog.s3.put_cost(14);
        assert_eq!(b.requests, expected);
    }

    #[test]
    fn invocation_count_covers_all_lambdas() {
        let catalog = PriceCatalog::aws_2020();
        let (job, config, perf) = setup(10, 2, 2, 128);
        let b = full_cost(&job, &config, &perf, &Platform::paper_literal(10.0), &catalog);
        // 5 mappers + 1 coordinator + 6 reducers = 12 invocations.
        assert_eq!(b.invocations, catalog.lambda.per_invocation * 12u64);
    }

    #[test]
    fn higher_memory_costs_more_at_saturated_speed() {
        // Past the CPU ceiling, duration stops shrinking but the GB-s rate
        // keeps growing, so cost must rise — the Fig. 2 right-hand tail.
        let catalog = PriceCatalog::aws_2020();
        let job = JobSpec::uniform("t", 10, 1.0, WorkloadProfile::uniform_test());
        let platform = Platform::aws_lambda(); // ceiling at 1792
        let mk = |mem: u32| {
            let config = JobConfig {
                mapper_mem_mb: mem,
                coordinator_mem_mb: mem,
                reducer_mem_mb: mem,
                objects_per_mapper: 2,
                objects_per_reducer: 2,
            };
            let perf = full_perf(&job, &platform, &config);
            full_cost(&job, &config, &perf, &platform, &catalog).total()
        };
        assert!(mk(3008) > mk(1792));
    }

    #[test]
    fn runtime_dominates_for_compute_heavy_job() {
        let catalog = PriceCatalog::aws_2020();
        let (job, config, perf) = setup(10, 2, 2, 128);
        let b = full_cost(&job, &config, &perf, &Platform::paper_literal(10.0), &catalog);
        assert!(b.runtime > b.requests);
        assert!(b.runtime > b.storage);
        assert!(b.total() > Money::ZERO);
    }

    #[test]
    fn billing_granularity_rounds_up() {
        let lambda = LambdaPricing::aws_2020();
        // 50 ms of work bills as 100 ms.
        let short = runtime_cost(0.05, 1024, &lambda);
        let full = runtime_cost(0.1, 1024, &lambda);
        assert_eq!(short, full);
    }
}
