#![warn(missing_docs)]

//! Analytical performance and monetary-cost models for serverless
//! MapReduce, reproducing Sec. III of the Astra paper.
//!
//! The model answers one question: *given a job and a configuration, how
//! long will it take and what will it cost?* — without running anything.
//! The planner (`astra-core`) evaluates these formulas over the whole
//! configuration space to build its Fig. 5 DAG; the event simulator
//! (`astra-faas` + `astra-mapreduce`) executes the same job physically and
//! is what the "measured" numbers in the experiments come from. At zero
//! simulator noise and zero cold-start the two agree closely (the
//! `model_vs_sim` ablation quantifies the residual).
//!
//! Model structure, mapped to the paper:
//!
//! | Paper | Module |
//! |---|---|
//! | Lambda memory tiers, speed ∝ memory (Sec. II-C) | [`platform`] |
//! | Mapper lifetime, Eq. 1–4 | [`perf::mapper_phase`] |
//! | Coordinator lifetime, Eq. 5–6 | [`perf::coordinator_compute_secs`] |
//! | Reducer-step schedule, Table II | [`schedule`] |
//! | Reducing phase, Eq. 7–9 | [`perf::ReducePhase`] |
//! | Request / storage / runtime cost, Eq. 10–15 | [`cost`] |
//!
//! ## Documented deviations from the paper's literal formulas
//!
//! 1. **Per-step parallelism.** Eq. 9 sums the *total* reducing-phase data
//!    volume, as if reducers within a step did not run in parallel — yet the
//!    paper's own Fig. 3 timeline shows them parallel. We model each step's
//!    duration as (slowest reducer's transfer) + (slowest reducer's
//!    compute), which is exactly the separable decomposition the paper's
//!    Fig. 5 DAG uses (transfer and compute live on different edge sets).
//! 2. **Per-request latency.** Eq. 4 charges pure bandwidth `(d+e)/B`;
//!    real S3 adds a first-byte latency per request, which dominates for
//!    many-small-object configurations (Fig. 1's left side). Both model and
//!    simulator include it; set it to zero in [`TransferModel`] for the
//!    literal paper form.
//! 3. **Per-lambda billing.** Eq. 13 bills the mapper phase as `v_i · T1`
//!    (the slowest mapper's duration, once). AWS bills every lambda for its
//!    own rounded-up duration; we bill per-lambda, which is what the
//!    simulator's invoice contains as well.
//! 4. **State-object GETs.** The reference framework's reducers read the
//!    coordinator's state object; Eq. 10 omits those GETs. We include one
//!    state GET per reducer in both model and simulator.
//!
//! [`TransferModel`]: astra_storage::TransferModel

pub mod config;
pub mod cost;
pub mod distribute;
pub mod ephemeral;
pub mod evaluate;
pub mod job;
pub mod perf;
pub mod platform;
pub mod schedule;
pub mod workload;

pub use config::JobConfig;
pub use cost::{CostBreakdown, CostParams};
pub use ephemeral::IntermediateStorage;
pub use evaluate::{check_feasibility, evaluate, Evaluation, Infeasibility};
pub use job::JobSpec;
pub use perf::{PerfBreakdown, ReducePhase, ReduceTierTimes};
pub use platform::Platform;
pub use schedule::{reduce_schedule, ReduceStep};
pub use workload::WorkloadProfile;
