//! The FaaS platform's resource envelope: memory tiers, CPU scaling,
//! quotas and network characteristics.

use astra_storage::TransferModel;
use serde::{Deserialize, Serialize};

use crate::ephemeral::IntermediateStorage;

/// Smallest AWS Lambda memory size (MB).
pub const MIN_MEMORY_MB: u32 = 128;
/// Largest AWS Lambda memory size at the paper's evaluation time (MB).
pub const MAX_MEMORY_MB: u32 = 3008;
/// Memory increment (MB).
pub const MEMORY_STEP_MB: u32 = 64;

/// Platform description: everything Sec. II-B lists about AWS Lambda, as
/// model parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Allocatable memory sizes in MB, ascending (`L` categories).
    pub memory_tiers_mb: Vec<u32>,
    /// CPU share grows linearly with memory up to this ceiling, then
    /// flattens (AWS grants a full vCPU around 1.8 GB; the paper's Fig. 6
    /// observes no improvement past 1536 MB). Set to `MAX_MEMORY_MB` for
    /// strictly-proportional scaling.
    pub cpu_ceiling_mb: u32,
    /// Account-level concurrent-execution limit (`R`, 1000 on AWS).
    pub max_concurrency: u32,
    /// Per-function execution timeout in seconds (900 s on AWS).
    pub timeout_s: f64,
    /// Maximum total storage for a job's objects in MB (`O`, 5 TB).
    pub max_storage_mb: f64,
    /// Cold-start delay in seconds (simulator only; the analytical model
    /// follows the paper in ignoring it, which is part of model error).
    pub cold_start_s: f64,
    /// Network model between functions and the object store. Its
    /// `bandwidth_mbps` is the per-function bandwidth *at the smallest
    /// memory tier*; larger tiers scale it (see
    /// [`bandwidth_mbps`](Self::bandwidth_mbps)).
    pub transfer: TransferModel,
    /// CPU efficiency at the smallest tier, relative to proportional
    /// scaling (1.0 = the paper's idealised "speed proportional to
    /// memory"). Measured small lambdas are disproportionately slow —
    /// fixed runtime overheads eat a bigger share of a sliver of vCPU —
    /// which is what makes the paper's Fig. 6 *cost* curve high at
    /// 128 MB and minimal mid-range.
    pub efficiency_at_min: f64,
    /// Memory (MB) at and above which efficiency reaches 1.0; efficiency
    /// interpolates linearly from `efficiency_at_min` below it.
    pub efficiency_full_mb: u32,
    /// Per-function network bandwidth grows as `(mem/128)^exponent`
    /// (0 = flat, the paper's single-`B` model; ~0.5 matches Lambda↔S3
    /// throughput measurements).
    pub bandwidth_exponent: f64,
    /// Per-function bandwidth cap in MB/s.
    pub max_bandwidth_mbps: f64,
    /// Fixed latency of launching one batch of functions (the reference
    /// framework triggers phases through S3 events and polling — seconds,
    /// not milliseconds). Paid once per mapper fanout, once for the
    /// coordinator, and once per reduce step.
    pub orchestration_overhead_s: f64,
    /// Per-function invoke-API call latency; a batch of `n` functions is
    /// launched by `n` sequential calls.
    pub invoke_call_s: f64,
    /// Where *ephemeral* objects (shuffle output, state, reduce
    /// intermediates) live. `None` = S3, the paper's default; `Some` =
    /// an alternative store per the Discussion extension (see
    /// [`IntermediateStorage`]).
    pub intermediate: Option<IntermediateStorage>,
}

impl Platform {
    /// AWS Lambda as described in the paper (46 memory tiers from 128 to
    /// 3008 MB in 64 MB steps, 1000 concurrency, 900 s timeout, 5 TB cap).
    pub fn aws_lambda() -> Self {
        Platform {
            memory_tiers_mb: (MIN_MEMORY_MB..=MAX_MEMORY_MB)
                .step_by(MEMORY_STEP_MB as usize)
                .collect(),
            cpu_ceiling_mb: 1792,
            max_concurrency: 1000,
            timeout_s: 900.0,
            max_storage_mb: 5.0 * 1024.0 * 1024.0,
            cold_start_s: 0.25,
            transfer: TransferModel::aws_like(),
            efficiency_at_min: 0.6,
            efficiency_full_mb: 1024,
            bandwidth_exponent: 0.5,
            max_bandwidth_mbps: 90.0,
            orchestration_overhead_s: 1.0,
            invoke_call_s: 0.02,
            intermediate: None,
        }
    }

    /// A strictly paper-literal platform: speed exactly proportional to
    /// memory over the whole range, one flat bandwidth `B`, no request
    /// latency, no cold starts.
    pub fn paper_literal(bandwidth_mbps: f64) -> Self {
        Platform {
            cpu_ceiling_mb: MAX_MEMORY_MB,
            cold_start_s: 0.0,
            transfer: TransferModel::paper_literal(bandwidth_mbps),
            efficiency_at_min: 1.0,
            bandwidth_exponent: 0.0,
            max_bandwidth_mbps: bandwidth_mbps,
            orchestration_overhead_s: 0.0,
            invoke_call_s: 0.0,
            intermediate: None,
            ..Self::aws_lambda()
        }
    }

    /// Google Cloud Functions (gen-1): only five memory sizes, CPU
    /// coupled to memory across the whole range (no mid-range vCPU
    /// ceiling), 540 s timeout, 1000 concurrent executions, and a
    /// somewhat slower function↔storage path than Lambda↔S3.
    pub fn gcp_functions() -> Self {
        Platform {
            memory_tiers_mb: vec![128, 256, 512, 1024, 2048],
            cpu_ceiling_mb: 2048,
            max_concurrency: 1000,
            timeout_s: 540.0,
            max_bandwidth_mbps: 75.0,
            ..Self::aws_lambda()
        }
    }

    /// Azure Functions consumption plan: memory is elastic up to
    /// 1536 MB (modelled as explicit tiers), 600 s timeout, 200-instance
    /// scale-out limit.
    pub fn azure_functions() -> Self {
        Platform {
            memory_tiers_mb: (MIN_MEMORY_MB..=1536).step_by(MEMORY_STEP_MB as usize).collect(),
            cpu_ceiling_mb: 1536,
            max_concurrency: 200,
            timeout_s: 600.0,
            ..Self::aws_lambda()
        }
    }

    /// Number of memory categories (`L`).
    pub fn tier_count(&self) -> usize {
        self.memory_tiers_mb.len()
    }

    /// CPU efficiency of tier `mem_mb` relative to proportional scaling.
    pub fn efficiency(&self, mem_mb: u32) -> f64 {
        if mem_mb >= self.efficiency_full_mb || self.efficiency_at_min >= 1.0 {
            return 1.0;
        }
        let span = (self.efficiency_full_mb - MIN_MEMORY_MB) as f64;
        let pos = (mem_mb.saturating_sub(MIN_MEMORY_MB)) as f64 / span;
        self.efficiency_at_min + (1.0 - self.efficiency_at_min) * pos
    }

    /// Relative processing speed of a `mem_mb` lambda versus an *ideal*
    /// 128 MB one.
    ///
    /// "The computation time of each lambda is proportional to its memory
    /// size" (Sec. V setup), saturating at the vCPU ceiling and degraded
    /// at small tiers by [`efficiency`](Self::efficiency).
    pub fn speed_factor(&self, mem_mb: u32) -> f64 {
        mem_mb.min(self.cpu_ceiling_mb) as f64 / MIN_MEMORY_MB as f64 * self.efficiency(mem_mb)
    }

    /// Per-function network bandwidth at tier `mem_mb` in MB/s.
    pub fn bandwidth_mbps(&self, mem_mb: u32) -> f64 {
        let scale = (mem_mb as f64 / MIN_MEMORY_MB as f64).powf(self.bandwidth_exponent);
        (self.transfer.bandwidth_mbps * scale).min(self.max_bandwidth_mbps)
    }

    /// Seconds for a `mem_mb` lambda to GET `size_mb` from the store.
    pub fn get_secs(&self, mem_mb: u32, size_mb: f64) -> f64 {
        self.transfer.get_latency_s + size_mb / self.bandwidth_mbps(mem_mb)
    }

    /// Seconds for a `mem_mb` lambda to PUT `size_mb` to the store.
    pub fn put_secs(&self, mem_mb: u32, size_mb: f64) -> f64 {
        self.transfer.put_latency_s + size_mb / self.bandwidth_mbps(mem_mb)
    }

    /// Seconds to launch a batch of `n` functions: the fixed phase
    /// trigger overhead plus `n` sequential invoke calls.
    pub fn spawn_secs(&self, n: usize) -> f64 {
        self.orchestration_overhead_s + n as f64 * self.invoke_call_s
    }

    /// Seconds for a `mem_mb` lambda to read `size_mb` of *ephemeral*
    /// data (shuffle/state/intermediate objects) from the configured
    /// intermediate store. Falls back to S3 when none is configured.
    pub fn inter_get_secs(&self, mem_mb: u32, size_mb: f64) -> f64 {
        match &self.intermediate {
            None => self.get_secs(mem_mb, size_mb),
            Some(c) => {
                c.get_latency_s + size_mb / self.bandwidth_mbps(mem_mb).min(c.bandwidth_mbps)
            }
        }
    }

    /// Seconds for a `mem_mb` lambda to write `size_mb` of ephemeral data.
    pub fn inter_put_secs(&self, mem_mb: u32, size_mb: f64) -> f64 {
        match &self.intermediate {
            None => self.put_secs(mem_mb, size_mb),
            Some(c) => {
                c.put_latency_s + size_mb / self.bandwidth_mbps(mem_mb).min(c.bandwidth_mbps)
            }
        }
    }

    /// This platform with a Redis-like in-memory intermediate tier (the
    /// Discussion's ElastiCache variant).
    pub fn with_elasticache(mut self) -> Self {
        self.intermediate = Some(IntermediateStorage::elasticache());
        self
    }

    /// Seconds to process one MB at tier `mem_mb` for a workload whose
    /// 128 MB-tier unit time is `secs_per_mb_128` (the `u_i` of Eq. 3).
    pub fn secs_per_mb(&self, mem_mb: u32, secs_per_mb_128: f64) -> f64 {
        secs_per_mb_128 / self.speed_factor(mem_mb)
    }

    /// Validate that `mem_mb` is one of the allocatable tiers.
    pub fn is_valid_tier(&self, mem_mb: u32) -> bool {
        self.memory_tiers_mb.binary_search(&mem_mb).is_ok()
    }
}

impl Default for Platform {
    fn default() -> Self {
        Self::aws_lambda()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aws_has_46_tiers() {
        let p = Platform::aws_lambda();
        assert_eq!(p.tier_count(), 46);
        assert_eq!(p.memory_tiers_mb[0], 128);
        assert_eq!(*p.memory_tiers_mb.last().unwrap(), 3008);
        assert!(p.is_valid_tier(1024));
        assert!(!p.is_valid_tier(1000));
    }

    #[test]
    fn speed_scales_linearly_then_saturates() {
        let p = Platform::paper_literal(40.0);
        assert_eq!(p.speed_factor(128), 1.0);
        assert_eq!(p.speed_factor(256), 2.0);
        let mut aws = Platform::aws_lambda();
        aws.efficiency_at_min = 1.0;
        assert_eq!(aws.speed_factor(1792), 14.0);
        // Past the ceiling no further speedup (Fig. 6 plateau).
        assert_eq!(aws.speed_factor(3008), 14.0);
    }

    #[test]
    fn small_tiers_pay_an_efficiency_penalty() {
        let p = Platform::aws_lambda();
        assert_eq!(p.efficiency(128), 0.6);
        assert_eq!(p.efficiency(1024), 1.0);
        assert_eq!(p.efficiency(3008), 1.0);
        let mid = p.efficiency(576); // halfway 128..1024
        assert!((mid - 0.8).abs() < 1e-12);
        // Speed at 128 MB is 0.6x the proportional ideal.
        assert!((p.speed_factor(128) - 0.6).abs() < 1e-12);
        // Per-GB-s cost efficiency therefore favours mid tiers: duration
        // at 128 is 1/0.6 of the proportional value.
    }

    #[test]
    fn bandwidth_scales_with_memory_and_caps() {
        let p = Platform::aws_lambda();
        assert_eq!(p.bandwidth_mbps(128), 40.0);
        assert!((p.bandwidth_mbps(512) - 80.0).abs() < 1e-9); // 40 * 2
        assert_eq!(p.bandwidth_mbps(3008), 90.0); // capped
        let lit = Platform::paper_literal(40.0);
        assert_eq!(lit.bandwidth_mbps(128), 40.0);
        assert_eq!(lit.bandwidth_mbps(3008), 40.0); // flat
    }

    #[test]
    fn get_put_secs_use_tier_bandwidth() {
        let p = Platform::paper_literal(10.0);
        assert_eq!(p.get_secs(128, 20.0), 2.0);
        assert_eq!(p.put_secs(3008, 10.0), 1.0);
    }

    #[test]
    fn paper_literal_scales_to_the_top() {
        let p = Platform::paper_literal(40.0);
        assert_eq!(p.speed_factor(3008), 23.5);
        assert_eq!(p.cold_start_s, 0.0);
        assert_eq!(p.transfer.get_latency_s, 0.0);
    }

    #[test]
    fn secs_per_mb_divides_by_speed() {
        let p = Platform::paper_literal(40.0);
        assert_eq!(p.secs_per_mb(128, 1.0), 1.0);
        assert_eq!(p.secs_per_mb(256, 1.0), 0.5);
        assert_eq!(p.secs_per_mb(512, 2.0), 0.5);
    }
}
