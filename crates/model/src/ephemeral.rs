//! Alternative intermediate (ephemeral) storage — the paper's Discussion
//! extension.
//!
//! The paper: "Astra relies on S3 for the exchange of intermediate data.
//! When other types of data storage are considered … such as serverless
//! in-memory data storage (AWS ElastiCache), our modeling needs to be
//! adjusted by analyzing the characteristics and cost of the particular
//! storage." This module is that adjustment, in the style of
//! Locus [Pu et al., NSDI'19]: a provisioned in-memory tier with
//! microsecond-scale request latency and *rental* (per-hour) pricing
//! instead of per-request/per-byte-month pricing.
//!
//! Job input objects always live in S3 (they are persistent); only the
//! *ephemeral* objects — shuffle output, state objects, reduce
//! intermediates and the final result — move to the configured store.
//!
//! Rental pricing preserves the planner DAG's exactness: the rent is
//! `rate × JCT`, and since every second of the modelled JCT lies on
//! exactly one DAG edge, each edge simply carries `rate × its time
//! metric` of extra cost.

use astra_pricing::Money;
use serde::{Deserialize, Serialize};

/// An intermediate-data store's performance and billing characteristics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntermediateStorage {
    /// Display name ("elasticache", …).
    pub name: String,
    /// First-byte latency of a read, seconds.
    pub get_latency_s: f64,
    /// First-byte latency of a write, seconds.
    pub put_latency_s: f64,
    /// Store-side aggregate bandwidth cap per client, MB/s. The effective
    /// rate of a transfer is the minimum of this and the function's own
    /// NIC bandwidth.
    pub bandwidth_mbps: f64,
    /// Charge per read request (0 for rented stores).
    pub per_get: Money,
    /// Charge per write request.
    pub per_put: Money,
    /// Storage charge per GB-month (0 for rented stores — capacity is
    /// what the rent buys).
    pub storage_gb_month_dollars: f64,
    /// Rental rate for the provisioned cluster, per hour (0 for
    /// pay-per-use stores like S3).
    pub rental_per_hour: Money,
}

impl IntermediateStorage {
    /// A Redis-like in-memory tier: two `cache.r5.large`-class nodes
    /// (~$0.216/h each), ~1 ms request latency, no per-request or
    /// per-byte charges.
    pub fn elasticache() -> Self {
        IntermediateStorage {
            name: "elasticache".to_string(),
            get_latency_s: 0.001,
            put_latency_s: 0.001,
            bandwidth_mbps: 250.0,
            per_get: Money::ZERO,
            per_put: Money::ZERO,
            storage_gb_month_dollars: 0.0,
            rental_per_hour: Money::from_micros(432_000), // 2 x $0.216
        }
    }

    /// Rental charge for keeping the store up for `secs` seconds.
    pub fn rental_cost(&self, secs: f64) -> Money {
        self.rental_per_hour.scale(secs / 3600.0)
    }

    /// Rental charged per modelled second (the per-edge rate).
    pub fn rental_per_second(&self) -> Money {
        self.rental_per_hour.scale(1.0 / 3600.0)
    }

    /// Storage charge for `size_mb` held `secs` seconds.
    pub fn storage_cost(&self, size_mb: f64, secs: f64) -> Money {
        if self.storage_gb_month_dollars == 0.0 {
            return Money::ZERO;
        }
        let gb_months = (size_mb / 1024.0) * secs / (30.0 * 24.0 * 3600.0);
        Money::from_dollars_f64(self.storage_gb_month_dollars).scale(gb_months)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elasticache_bills_rent_not_requests() {
        let c = IntermediateStorage::elasticache();
        assert_eq!(c.per_get, Money::ZERO);
        assert_eq!(c.per_put, Money::ZERO);
        assert_eq!(c.storage_cost(1000.0, 3600.0), Money::ZERO);
        // One hour of 2 nodes = $0.432.
        assert_eq!(c.rental_cost(3600.0), Money::from_dollars_f64(0.432));
    }

    #[test]
    fn rental_per_second_sums_to_hourly() {
        let c = IntermediateStorage::elasticache();
        let per_s = c.rental_per_second();
        let hour = per_s * 3600u64;
        let err = (hour - c.rental_per_hour).nanos().abs();
        assert!(err < 3600, "rounding drift {err}");
    }

    #[test]
    fn cache_latency_is_millisecond_scale() {
        let c = IntermediateStorage::elasticache();
        assert!(c.get_latency_s < 0.01);
        assert!(c.bandwidth_mbps > 100.0);
    }
}
