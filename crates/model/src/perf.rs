//! Completion-time model — paper Sec. III-A (Eq. 1–9).

use serde::{Deserialize, Serialize};

use crate::config::JobConfig;
use crate::distribute::distribute_sizes;
use crate::job::JobSpec;
use crate::platform::Platform;
use crate::schedule::ReduceStep;
use crate::workload::WorkloadProfile;

/// The mapping phase: per-mapper lifetimes and the phase duration `T1`
/// (Eq. 4: the slowest of `j` parallel mappers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapperPhase {
    /// Lifetime of each mapper in seconds (S3 traffic + compute).
    pub per_mapper_secs: Vec<f64>,
    /// `T1`: the maximum of `per_mapper_secs`.
    pub duration_s: f64,
    /// Output object sizes (one per mapper, `e_m = alpha * d_m`).
    pub output_sizes_mb: Vec<f64>,
}

/// Compute the mapping phase for mapper memory `mem_mb` and `k_M` objects
/// per mapper.
pub fn mapper_phase(job: &JobSpec, platform: &Platform, mem_mb: u32, k_m: usize) -> MapperPhase {
    let assignments = distribute_sizes(&job.object_sizes_mb, k_m);
    let secs_per_mb = platform.secs_per_mb(mem_mb, job.profile.map_secs_per_mb_128);
    let mut per_mapper = Vec::with_capacity(assignments.len());
    let mut outputs = Vec::with_capacity(assignments.len());
    for objs in &assignments {
        let input_mb: f64 = objs.iter().sum();
        let output_mb = input_mb * job.profile.shuffle_ratio;
        // Eq. 4: (d + e)/B (per-object GETs + one PUT) plus compute c = d*u.
        // Inputs come from S3; the shuffle object is ephemeral.
        let transfer: f64 = objs.iter().map(|&d| platform.get_secs(mem_mb, d)).sum::<f64>()
            + platform.inter_put_secs(mem_mb, output_mb);
        let compute = input_mb * secs_per_mb;
        per_mapper.push(transfer + compute);
        outputs.push(output_mb);
    }
    // The mapping phase also pays for its own launch: the client fires
    // `j` invoke calls behind one orchestration trigger.
    let spawn = platform.spawn_secs(per_mapper.len());
    let duration = per_mapper.iter().cloned().fold(0.0, f64::max) + spawn;
    MapperPhase {
        per_mapper_secs: per_mapper,
        duration_s: duration,
        output_sizes_mb: outputs,
    }
}

/// Compute the mapping phase for an explicit object-index assignment
/// (the skew-mitigation extension; the paper's framework uses the
/// consecutive assignment of [`mapper_phase`]).
pub fn mapper_phase_with_assignment(
    job: &JobSpec,
    platform: &Platform,
    mem_mb: u32,
    assignments: &[Vec<usize>],
) -> MapperPhase {
    assert!(!assignments.is_empty(), "need at least one mapper");
    let secs_per_mb = platform.secs_per_mb(mem_mb, job.profile.map_secs_per_mb_128);
    let mut per_mapper = Vec::with_capacity(assignments.len());
    let mut outputs = Vec::with_capacity(assignments.len());
    for objs in assignments {
        let input_mb: f64 = objs.iter().map(|&i| job.object_sizes_mb[i]).sum();
        let output_mb = input_mb * job.profile.shuffle_ratio;
        let transfer: f64 = objs
            .iter()
            .map(|&i| platform.get_secs(mem_mb, job.object_sizes_mb[i]))
            .sum::<f64>()
            + platform.put_secs(mem_mb, output_mb);
        per_mapper.push(transfer + input_mb * secs_per_mb);
        outputs.push(output_mb);
    }
    let spawn = platform.spawn_secs(per_mapper.len());
    let duration = per_mapper.iter().cloned().fold(0.0, f64::max) + spawn;
    MapperPhase {
        per_mapper_secs: per_mapper,
        duration_s: duration,
        output_sizes_mb: outputs,
    }
}

/// Data-flow structure of the reducing phase: the Table II schedule.
/// Everything here depends only on `(k_M, k_R)` — object counts and
/// sizes — not on any memory tier, which is what lets the planner share
/// it across the tier choices of its DAG columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReduceStructure {
    /// The step schedule.
    pub steps: Vec<ReduceStep>,
    /// Per-step launch latency (`spawn_secs(g_p)`), part of each step's
    /// duration and of the coordinator's billed lifetime.
    pub per_step_spawn_s: Vec<f64>,
}

impl ReduceStructure {
    /// Number of reduce steps (`P`).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Total reducers across steps (`g`).
    pub fn total_reducers(&self) -> usize {
        self.steps.iter().map(ReduceStep::reducers).sum()
    }
}

/// Build the reducing-phase structure from the mapper outputs.
pub fn reduce_structure(
    mapper_outputs_mb: &[f64],
    k_r: usize,
    profile: &WorkloadProfile,
    platform: &Platform,
) -> ReduceStructure {
    let steps = crate::schedule::schedule_steps(
        mapper_outputs_mb,
        k_r,
        profile.reduce_ratio,
        profile.single_pass_reduce,
    );
    reduce_structure_from_steps(steps, profile, platform)
}

/// Build the reducing-phase structure from an already-computed step
/// schedule (the path explicitly-specified plans like Baseline 3 take).
pub fn reduce_structure_from_steps(
    steps: Vec<ReduceStep>,
    profile: &WorkloadProfile,
    platform: &Platform,
) -> ReduceStructure {
    let _ = profile;
    let per_step_spawn_s = steps
        .iter()
        .map(|s| platform.spawn_secs(s.reducers()))
        .collect();
    ReduceStructure {
        steps,
        per_step_spawn_s,
    }
}

/// Per-reducer lifetimes of the reducing phase at one reducer memory
/// tier: state GET + input GETs + compute (Eq. 9's `o`) + output PUT.
/// Both transfer and compute scale with the tier (bandwidth and CPU),
/// so the whole lifetime lives here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReduceTierTimes {
    /// `per_reducer_s[p][r]`: reducer `r` of step `p`'s full lifetime.
    pub per_reducer_s: Vec<Vec<f64>>,
    /// Per-step slowest-reducer lifetime (the step's duration).
    pub per_step_max_s: Vec<f64>,
}

impl ReduceTierTimes {
    /// `T_P`: the reducing phase's total duration (sum of step maxima).
    pub fn duration_s(&self) -> f64 {
        self.per_step_max_s.iter().sum()
    }
}

/// Evaluate reducer lifetimes for one memory tier.
///
/// Adjacent reducers with bit-identical assignments share one computed
/// lifetime: under an even split every reducer of a step except possibly
/// the remainder-holding last one reads the same object sizes, so the
/// per-row model runs `O(steps)` times instead of `O(reducers)` — and
/// returns the exact value the repeated fold would, because the reused
/// number *is* that fold's result for identical input bits.
pub fn reduce_tier_times(
    structure: &ReduceStructure,
    platform: &Platform,
    profile: &WorkloadProfile,
    mem_mb: u32,
) -> ReduceTierTimes {
    let secs_per_mb = platform.secs_per_mb(mem_mb, profile.reduce_secs_per_mb_128);
    // Everything a reducer touches is ephemeral data.
    let state_get_s = platform.inter_get_secs(mem_mb, profile.state_object_mb);
    let row_time = |objs: &[f64], out: f64| {
        state_get_s
            + objs.iter().map(|&d| platform.inter_get_secs(mem_mb, d)).sum::<f64>()
            + objs.iter().sum::<f64>() * secs_per_mb
            + platform.inter_put_secs(mem_mb, out)
    };
    let same_row = |a: &[f64], b: &[f64]| {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    };
    let mut per_reducer = Vec::with_capacity(structure.steps.len());
    let mut per_step_max = Vec::with_capacity(structure.steps.len());
    for step in &structure.steps {
        let mut times: Vec<f64> = Vec::with_capacity(step.assignments.len());
        let mut prev: Option<(&[f64], f64, f64)> = None;
        for (objs, &out) in step.assignments.iter().zip(&step.output_sizes) {
            let t = match prev {
                Some((pobjs, pout, pt))
                    if pout.to_bits() == out.to_bits() && same_row(pobjs, objs) =>
                {
                    pt
                }
                _ => row_time(objs, out),
            };
            prev = Some((objs, out, t));
            times.push(t);
        }
        per_step_max.push(
            times.iter().cloned().fold(0.0, f64::max)
                + structure.per_step_spawn_s[per_reducer.len()],
        );
        per_reducer.push(times);
    }
    ReduceTierTimes {
        per_reducer_s: per_reducer,
        per_step_max_s: per_step_max,
    }
}

/// Coordinator planning time (`c_2` of Eq. 6): proportional to the shuffle
/// volume it organises, scaled by its memory tier.
pub fn coordinator_compute_secs(
    shuffle_mb: f64,
    platform: &Platform,
    profile: &WorkloadProfile,
    mem_mb: u32,
) -> f64 {
    shuffle_mb * platform.secs_per_mb(mem_mb, profile.coord_secs_per_mb_128)
}

/// Time for the coordinator's `P` state-object PUTs (`P·l/B` of Eq. 6),
/// at the coordinator's tier bandwidth.
pub fn coordinator_state_put_secs(
    num_steps: usize,
    platform: &Platform,
    profile: &WorkloadProfile,
    mem_mb: u32,
) -> f64 {
    // Includes the coordinator's own launch (one spawn of one function)
    // so that `T2` covers everything between the mapping and reducing
    // phases.
    platform.spawn_secs(1)
        + num_steps as f64 * platform.inter_put_secs(mem_mb, profile.state_object_mb)
}

/// The reducing phase combined (schedule + lifetimes at one tier).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReducePhase {
    /// Data-flow structure (tier-free).
    pub structure: ReduceStructure,
    /// Lifetimes at the chosen reducer tier.
    pub times: ReduceTierTimes,
}

impl ReducePhase {
    /// Full duration of step `p` (0-based): its slowest reducer.
    pub fn step_time_s(&self, p: usize) -> f64 {
        self.times.per_step_max_s[p]
    }

    /// `T_P`: total reducing-phase duration across all steps.
    pub fn duration_s(&self) -> f64 {
        self.times.duration_s()
    }

    /// Lifetime of one reducer.
    pub fn reducer_time_s(&self, p: usize, r: usize) -> f64 {
        self.times.per_reducer_s[p][r]
    }
}

/// Complete completion-time breakdown for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfBreakdown {
    /// The mapping phase.
    pub mapper: MapperPhase,
    /// Coordinator planning compute (`c_2`).
    pub coord_compute_s: f64,
    /// Coordinator state-object PUT time (`P·l/B`).
    pub coord_state_put_s: f64,
    /// The reducing phase.
    pub reduce: ReducePhase,
}

impl PerfBreakdown {
    /// `T2`: the coordinator's non-overlapping lifetime (Eq. 6).
    pub fn coordinator_s(&self) -> f64 {
        self.coord_compute_s + self.coord_state_put_s
    }

    /// Job completion time: `T1 + T2 + T_P` (the Eq. 16 objective).
    pub fn jct_s(&self) -> f64 {
        self.mapper.duration_s + self.coordinator_s() + self.reduce.duration_s()
    }

    /// The coordinator's *billed* lifetime: it also stays alive while the
    /// first `P-1` reducer steps run (Eq. 14's `T_{P-1}` term), and pays
    /// the launch latency of the final step before exiting
    /// fire-and-forget.
    pub fn coordinator_billed_s(&self) -> f64 {
        let p = self.reduce.structure.num_steps();
        let waits: f64 = (0..p.saturating_sub(1))
            .map(|q| self.reduce.step_time_s(q))
            .sum();
        let last_spawn = self.reduce.structure.per_step_spawn_s[p - 1];
        self.coordinator_s() + waits + last_spawn
    }
}

/// Evaluate the full performance model for one configuration.
pub fn full_perf(job: &JobSpec, platform: &Platform, config: &JobConfig) -> PerfBreakdown {
    config.validate();
    job.profile.validate();
    let mapper = mapper_phase(job, platform, config.mapper_mem_mb, config.objects_per_mapper);
    let structure = reduce_structure(
        &mapper.output_sizes_mb,
        config.objects_per_reducer,
        &job.profile,
        platform,
    );
    let times = reduce_tier_times(&structure, platform, &job.profile, config.reducer_mem_mb);
    let coord_compute_s =
        coordinator_compute_secs(job.shuffle_mb(), platform, &job.profile, config.coordinator_mem_mb);
    let coord_state_put_s = coordinator_state_put_secs(
        structure.num_steps(),
        platform,
        &job.profile,
        config.coordinator_mem_mb,
    );
    PerfBreakdown {
        mapper,
        coord_compute_s,
        coord_state_put_s,
        reduce: ReducePhase { structure, times },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use proptest::prelude::*;

    fn job(n: usize, size: f64) -> JobSpec {
        JobSpec::uniform("t", n, size, WorkloadProfile::uniform_test())
    }

    fn cfg(mem: u32, k_m: usize, k_r: usize) -> JobConfig {
        JobConfig {
            mapper_mem_mb: mem,
            coordinator_mem_mb: mem,
            reducer_mem_mb: mem,
            objects_per_mapper: k_m,
            objects_per_reducer: k_r,
        }
    }

    #[test]
    fn mapper_phase_hand_computed() {
        // Pure-bandwidth platform: B = 10 MB/s, u = 1 s/MB at 128 MB.
        let p = Platform::paper_literal(10.0);
        let j = job(4, 5.0); // 4 objects of 5 MB, alpha = 1
        let phase = mapper_phase(&j, &p, 128, 2);
        // 2 mappers, each: input 10 MB, output 10 MB.
        // transfer = (10 + 10)/10 = 2 s; compute = 10 * 1 = 10 s.
        assert_eq!(phase.per_mapper_secs, vec![12.0, 12.0]);
        assert_eq!(phase.duration_s, 12.0);
        assert_eq!(phase.output_sizes_mb, vec![10.0, 10.0]);
    }

    #[test]
    fn bigger_memory_shrinks_compute_only() {
        let p = Platform::paper_literal(10.0);
        let j = job(4, 5.0);
        let slow = mapper_phase(&j, &p, 128, 2);
        let fast = mapper_phase(&j, &p, 256, 2);
        // Compute halves (10 -> 5), transfer unchanged (2).
        assert_eq!(slow.duration_s, 12.0);
        assert_eq!(fast.duration_s, 7.0);
    }

    #[test]
    fn skew_lengthens_the_straggler() {
        let p = Platform::paper_literal(10.0);
        let j = job(10, 1.0);
        let balanced = mapper_phase(&j, &p, 128, 5); // (5,5)
        let skewed = mapper_phase(&j, &p, 128, 9); // (9,1)
        assert!(skewed.duration_s > balanced.duration_s);
    }

    #[test]
    fn reduce_phase_hand_computed() {
        let p = Platform::paper_literal(10.0);
        let prof = WorkloadProfile::uniform_test();
        // 4 mapper outputs of 2 MB each, k_R = 2 -> steps (2, 1).
        let s = reduce_structure(&[2.0; 4], 2, &prof, &p);
        assert_eq!(s.num_steps(), 2);
        assert_eq!(s.total_reducers(), 3);
        let t = reduce_tier_times(&s, &p, &prof, 128);
        // Step 1 reducer: state get 0.1 + inputs 0.4 + compute 4.0 +
        // put 0.4 = 4.9 s.
        assert!((t.per_step_max_s[0] - 4.9).abs() < 1e-9);
        let phase = ReducePhase {
            structure: s,
            times: t,
        };
        assert!((phase.step_time_s(0) - 4.9).abs() < 1e-9);
        assert!((phase.reducer_time_s(0, 0) - 4.9).abs() < 1e-9);
    }

    #[test]
    fn jct_is_sum_of_phases() {
        let p = Platform::paper_literal(10.0);
        let j = job(10, 0.2);
        let perf = full_perf(&j, &p, &cfg(128, 2, 2));
        let expected = perf.mapper.duration_s + perf.coordinator_s() + perf.reduce.duration_s();
        assert_eq!(perf.jct_s(), expected);
        assert!(perf.jct_s() > 0.0);
    }

    #[test]
    fn coordinator_billed_exceeds_lifetime_when_multiple_steps() {
        let p = Platform::paper_literal(10.0);
        let j = job(10, 0.2);
        // k_R = 2 over 5 mapper outputs -> 3 steps.
        let perf = full_perf(&j, &p, &cfg(128, 2, 2));
        assert_eq!(perf.reduce.structure.num_steps(), 3);
        assert!(perf.coordinator_billed_s() > perf.coordinator_s());
        // Billed = lifetime + steps 1..P-1.
        let waits = perf.reduce.step_time_s(0) + perf.reduce.step_time_s(1);
        assert!((perf.coordinator_billed_s() - perf.coordinator_s() - waits).abs() < 1e-9);
    }

    #[test]
    fn single_step_coordinator_billed_equals_lifetime() {
        let p = Platform::paper_literal(10.0);
        let j = job(4, 1.0);
        let perf = full_perf(&j, &p, &cfg(128, 2, 8));
        assert_eq!(perf.reduce.structure.num_steps(), 1);
        assert_eq!(perf.coordinator_billed_s(), perf.coordinator_s());
    }

    #[test]
    fn request_latency_penalises_many_small_objects() {
        // With per-request latency, k_M = 1 (many mappers, one object each)
        // pays more aggregate latency than k_M = 2, visible in cost/time of
        // the whole reduce chain. Here check mapper phase only at equal
        // per-mapper data: latency adds per GET.
        let mut p = Platform::paper_literal(10.0);
        p.transfer.get_latency_s = 0.5;
        let j = job(8, 1.0);
        let one = mapper_phase(&j, &p, 128, 1); // 1 get each
        let four = mapper_phase(&j, &p, 128, 4); // 4 gets each
        // Slowest mapper with k=4 reads 4 MB (0.4s) + 4*0.5s latency + put
        // 0.4s + compute 4s = 6.8; with k=1: 0.1 + 0.5 + 0.1 + 1 = 1.7.
        assert!(four.duration_s > one.duration_s);
        assert!((one.duration_s - 1.7).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn jct_decreases_with_memory_on_literal_platform(
            n in 2usize..40, k_m in 1usize..10, k_r in 2usize..10
        ) {
            let p = Platform::paper_literal(20.0);
            let j = job(n, 1.0);
            let small = full_perf(&j, &p, &cfg(128, k_m, k_r)).jct_s();
            let big = full_perf(&j, &p, &cfg(3008, k_m, k_r)).jct_s();
            prop_assert!(big <= small + 1e-9);
        }

        #[test]
        fn mapper_count_matches_config(n in 1usize..100, k in 1usize..20) {
            let p = Platform::paper_literal(20.0);
            let j = job(n, 1.0);
            let phase = mapper_phase(&j, &p, 128, k);
            prop_assert_eq!(phase.per_mapper_secs.len(), n.div_ceil(k));
        }
    }
}
