//! FIFO token pool for modelling capacity limits (Lambda concurrency).

use std::collections::VecDeque;

/// A pool of identical tokens with a FIFO waiter queue.
///
/// `astra-faas` uses one of these for the account-level Lambda concurrency
/// limit (1000 by default, per the AWS quota the paper cites): an invocation
/// that arrives while all tokens are held queues here and is admitted in
/// arrival order when a running function finishes.
///
/// The pool is engine-agnostic: waiters are opaque `W` values handed back to
/// the caller on release, and the caller decides what "resuming" means
/// (typically scheduling a start event).
#[derive(Debug, Clone)]
pub struct FifoTokens<W> {
    capacity: usize,
    in_use: usize,
    waiters: VecDeque<W>,
    peak_in_use: usize,
    total_waits: u64,
}

impl<W> FifoTokens<W> {
    /// A pool with `capacity` tokens, all free.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "token pool capacity must be positive");
        FifoTokens {
            capacity,
            in_use: 0,
            waiters: VecDeque::new(),
            peak_in_use: 0,
            total_waits: 0,
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Tokens currently held.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Maximum concurrent holders observed.
    pub fn peak_in_use(&self) -> usize {
        self.peak_in_use
    }

    /// Number of acquisitions that had to queue.
    pub fn total_waits(&self) -> u64 {
        self.total_waits
    }

    /// Number of queued waiters.
    pub fn queued(&self) -> usize {
        self.waiters.len()
    }

    /// Try to take a token for `waiter`. Returns `true` if granted
    /// immediately; otherwise the waiter is queued FIFO and will be
    /// returned by a future [`release`](Self::release).
    pub fn acquire(&mut self, waiter: W) -> bool {
        if self.in_use < self.capacity && self.waiters.is_empty() {
            self.in_use += 1;
            self.peak_in_use = self.peak_in_use.max(self.in_use);
            true
        } else {
            self.total_waits += 1;
            self.waiters.push_back(waiter);
            false
        }
    }

    /// Return a token. If anyone is queued, the token passes directly to
    /// the oldest waiter, which is returned so the caller can resume it.
    pub fn release(&mut self) -> Option<W> {
        assert!(self.in_use > 0, "release without acquire");
        match self.waiters.pop_front() {
            Some(w) => Some(w), // token changes hands; in_use unchanged
            None => {
                self.in_use -= 1;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn grants_up_to_capacity() {
        let mut pool = FifoTokens::new(2);
        assert!(pool.acquire("a"));
        assert!(pool.acquire("b"));
        assert!(!pool.acquire("c"));
        assert_eq!(pool.in_use(), 2);
        assert_eq!(pool.queued(), 1);
    }

    #[test]
    fn release_hands_token_to_oldest_waiter() {
        let mut pool = FifoTokens::new(1);
        assert!(pool.acquire(1));
        assert!(!pool.acquire(2));
        assert!(!pool.acquire(3));
        assert_eq!(pool.release(), Some(2));
        assert_eq!(pool.release(), Some(3));
        assert_eq!(pool.release(), None);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn peak_tracks_high_watermark() {
        let mut pool = FifoTokens::new(5);
        for i in 0..3 {
            pool.acquire(i);
        }
        pool.release();
        pool.release();
        assert_eq!(pool.peak_in_use(), 3);
        assert_eq!(pool.in_use(), 1);
    }

    #[test]
    #[should_panic(expected = "release without acquire")]
    fn release_without_acquire_panics() {
        let mut pool: FifoTokens<()> = FifoTokens::new(1);
        pool.release();
    }

    #[test]
    fn waiter_queued_even_if_token_free_but_queue_nonempty() {
        // FIFO fairness: a new arrival must not jump over queued waiters.
        let mut pool = FifoTokens::new(1);
        assert!(pool.acquire(1));
        assert!(!pool.acquire(2));
        // Token released and handed to 2; now in_use stays 1.
        assert_eq!(pool.release(), Some(2));
        assert!(!pool.acquire(3) || pool.in_use() < pool.capacity());
    }

    proptest! {
        #[test]
        fn in_use_never_exceeds_capacity(ops in proptest::collection::vec(proptest::bool::ANY, 1..500), cap in 1usize..16) {
            let mut pool = FifoTokens::new(cap);
            let mut held = 0usize;
            for op in ops {
                if op {
                    if pool.acquire(()) {
                        held += 1;
                    } else {
                        // queued; a later release hands the token over
                    }
                } else if pool.in_use() > 0 && pool.release().is_none() {
                    held = held.saturating_sub(1);
                }
                prop_assert!(pool.in_use() <= cap);
            }
        }
    }
}
