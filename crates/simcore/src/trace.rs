//! Span traces for reconstructing job timelines (paper Fig. 3).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// What a span represents, mirroring the phases in the paper's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpanKind {
    /// Cold-start / container initialisation.
    ColdStart,
    /// Reading objects from the store.
    StorageGet,
    /// Writing objects to the store.
    StoragePut,
    /// Pure computation inside a function.
    Compute,
    /// A function waiting for children it spawned (the coordinator waiting
    /// on a reducer step).
    WaitChildren,
    /// Whole lifetime of one function invocation.
    Invocation,
    /// Queued behind the platform concurrency limit.
    QueuedConcurrency,
}

/// One traced interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Owning actor, e.g. `"mapper-3"`, `"coordinator"`, `"reducer-1-0"`.
    ///
    /// Shared (`Arc<str>`) rather than owned: the simulator records
    /// several spans per invocation, and sharing one allocation per actor
    /// keeps span recording off the allocator's hot path.
    pub actor: Arc<str>,
    /// What the interval represents.
    pub kind: SpanKind,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
}

impl Span {
    /// Duration of the span.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// An append-only log of spans produced during a simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceLog {
    spans: Vec<Span>,
}

impl TraceLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a span. `end` must not precede `start`.
    ///
    /// Accepts anything convertible to a shared string; callers that
    /// record many spans for the same actor should pass an `Arc<str>`
    /// clone so recording does not allocate.
    pub fn record(&mut self, actor: impl Into<Arc<str>>, kind: SpanKind, start: SimTime, end: SimTime) {
        assert!(end >= start, "span ends before it starts");
        self.spans.push(Span {
            actor: actor.into(),
            kind,
            start,
            end,
        });
    }

    /// All recorded spans, in record order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans of one actor, in record order.
    pub fn for_actor<'a>(&'a self, actor: &'a str) -> impl Iterator<Item = &'a Span> + 'a {
        self.spans.iter().filter(move |s| &*s.actor == actor)
    }

    /// Spans of one kind.
    pub fn of_kind(&self, kind: SpanKind) -> impl Iterator<Item = &Span> + '_ {
        self.spans.iter().filter(move |s| s.kind == kind)
    }

    /// Latest end time across all spans (the job makespan when the log
    /// covers a whole job).
    pub fn makespan(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Render an ASCII Gantt chart, one row per actor, `width` columns.
    ///
    /// This is how the experiment harness reproduces the Fig. 3 timeline
    /// decomposition. Glyphs: `c` cold start, `r` get, `w` put, `#`
    /// compute, `.` waiting on children, `q` queued.
    pub fn ascii_gantt(&self, width: usize) -> String {
        let end = self.makespan().as_micros().max(1);
        let mut actors: Vec<&str> = Vec::new();
        for s in &self.spans {
            if s.kind != SpanKind::Invocation && !actors.contains(&&*s.actor) {
                actors.push(&s.actor);
            }
        }
        let label_w = actors.iter().map(|a| a.len()).max().unwrap_or(0).max(8);
        let mut out = String::new();
        for actor in actors {
            let mut row = vec![' '; width];
            for s in self.for_actor(actor) {
                let glyph = match s.kind {
                    SpanKind::ColdStart => 'c',
                    SpanKind::StorageGet => 'r',
                    SpanKind::StoragePut => 'w',
                    SpanKind::Compute => '#',
                    SpanKind::WaitChildren => '.',
                    SpanKind::QueuedConcurrency => 'q',
                    SpanKind::Invocation => continue,
                };
                let a = (s.start.as_micros() as u128 * width as u128 / end as u128) as usize;
                let b = (s.end.as_micros() as u128 * width as u128 / end as u128) as usize;
                let b = b.clamp(a + 1, width).max(a + 1).min(width);
                for cell in row.iter_mut().take(b).skip(a.min(width.saturating_sub(1))) {
                    *cell = glyph;
                }
            }
            out.push_str(&format!("{actor:>label_w$} |"));
            out.extend(row);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_micros(s)
    }

    #[test]
    fn records_and_queries() {
        let mut log = TraceLog::new();
        log.record("mapper-0", SpanKind::Compute, t(0), t(10));
        log.record("mapper-0", SpanKind::StoragePut, t(10), t(12));
        log.record("reducer-0", SpanKind::Compute, t(12), t(20));
        assert_eq!(log.spans().len(), 3);
        assert_eq!(log.for_actor("mapper-0").count(), 2);
        assert_eq!(log.of_kind(SpanKind::Compute).count(), 2);
        assert_eq!(log.makespan(), t(20));
    }

    #[test]
    fn span_duration() {
        let mut log = TraceLog::new();
        log.record("a", SpanKind::StorageGet, t(5), t(9));
        assert_eq!(log.spans()[0].duration(), SimDuration::from_micros(4));
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn backwards_span_panics() {
        let mut log = TraceLog::new();
        log.record("a", SpanKind::Compute, t(10), t(5));
    }

    #[test]
    fn gantt_renders_every_actor_once() {
        let mut log = TraceLog::new();
        log.record("mapper-0", SpanKind::Compute, t(0), t(50));
        log.record("mapper-1", SpanKind::Compute, t(0), t(100));
        log.record("mapper-0", SpanKind::Invocation, t(0), t(50));
        let chart = log.ascii_gantt(40);
        assert_eq!(chart.lines().count(), 2);
        assert!(chart.contains("mapper-0"));
        assert!(chart.contains('#'));
    }

    #[test]
    fn empty_log_makespan_is_zero() {
        assert_eq!(TraceLog::new().makespan(), SimTime::ZERO);
    }
}
