//! Microsecond-resolution simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulated clock, in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// Simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as `f64` (display/plotting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`. Panics in debug builds if `earlier`
    /// is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self.0 >= earlier.0, "time went backwards");
        SimDuration(self.0 - earlier.0)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiply by a non-negative factor, rounding to the nearest
    /// microsecond (used to apply noise).
    pub fn scale(self, factor: f64) -> SimDuration {
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The longer of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(2);
        assert_eq!(t.as_micros(), 2_000_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_secs(2));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn scale_applies_factor() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.scale(0.5), SimDuration::from_secs(5));
        assert_eq!(d.scale(1.25), SimDuration::from_micros(12_500_000));
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500s");
    }

    proptest! {
        #[test]
        fn add_then_since_roundtrips(start in 0u64..1_000_000_000, d in 0u64..1_000_000_000) {
            let t0 = SimTime::from_micros(start);
            let dur = SimDuration::from_micros(d);
            prop_assert_eq!((t0 + dur).since(t0), dur);
        }

        #[test]
        fn durations_sum_associatively(a in 0u64..1_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000) {
            let (a, b, c) = (SimDuration::from_micros(a), SimDuration::from_micros(b), SimDuration::from_micros(c));
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn max_is_commutative(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
            let (a, b) = (SimDuration::from_micros(a), SimDuration::from_micros(b));
            prop_assert_eq!(a.max(b), b.max(a));
        }
    }
}
