#![warn(missing_docs)]

//! Deterministic discrete-event simulation core.
//!
//! `astra-faas` and `astra-storage` are built on this crate. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulated time;
//! * [`EventQueue`] — a monotone future-event list with deterministic
//!   tie-breaking (events scheduled earlier pop earlier at equal
//!   timestamps), which makes every simulation run reproducible;
//! * [`NoiseModel`] — seeded multiplicative lognormal noise used to model
//!   runtime variance of cloud functions and object-store requests;
//! * [`FifoTokens`] — a FIFO token pool used for the Lambda concurrency cap;
//! * [`TraceLog`] — span traces from which the Fig. 3 timelines are drawn;
//! * [`summary`] — small descriptive-statistics helpers.

pub mod event;
pub mod noise;
pub mod resource;
pub mod summary;
pub mod time;
pub mod trace;

pub use event::EventQueue;
pub use noise::NoiseModel;
pub use resource::FifoTokens;
pub use time::{SimDuration, SimTime};
pub use trace::{Span, SpanKind, TraceLog};
