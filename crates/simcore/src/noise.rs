//! Seeded multiplicative noise for modelling cloud runtime variance.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::time::SimDuration;

/// Multiplicative lognormal noise with mean 1.
///
/// Cloud function runtimes and object-store request latencies exhibit
/// right-skewed variance; a lognormal multiplier with unit mean is the
/// standard way to model it without shifting averages. A coefficient of
/// variation of zero degrades to the identity, which the experiment harness
/// uses to check the simulator against the analytical model exactly.
#[derive(Debug)]
pub struct NoiseModel {
    rng: StdRng,
    /// Coefficient of variation of the multiplier (0 disables noise).
    cv: f64,
    mu: f64,
    sigma: f64,
}

impl NoiseModel {
    /// A noise source with the given coefficient of variation, seeded for
    /// reproducibility.
    pub fn new(seed: u64, cv: f64) -> Self {
        assert!(cv >= 0.0, "coefficient of variation must be non-negative");
        // For lognormal X = exp(mu + sigma Z): E[X] = exp(mu + sigma^2/2)
        // and CV^2 = exp(sigma^2) - 1. Solving for unit mean:
        let sigma2 = (1.0 + cv * cv).ln();
        let sigma = sigma2.sqrt();
        let mu = -sigma2 / 2.0;
        NoiseModel {
            rng: StdRng::seed_from_u64(seed),
            cv,
            mu,
            sigma,
        }
    }

    /// A noiseless model (every factor is exactly 1.0).
    pub fn disabled(seed: u64) -> Self {
        Self::new(seed, 0.0)
    }

    /// The configured coefficient of variation.
    pub fn cv(&self) -> f64 {
        self.cv
    }

    /// Draw one multiplicative factor (mean 1, lognormal).
    pub fn factor(&mut self) -> f64 {
        if self.cv == 0.0 {
            return 1.0;
        }
        // Box–Muller from two uniforms; avoids a rand_distr dependency.
        let u1: f64 = self.rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.random::<f64>();
        let z: f64 = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }

    /// Apply one noise draw to a duration.
    pub fn jitter(&mut self, d: SimDuration) -> SimDuration {
        d.scale(self.factor())
    }

    /// Draw a uniform value in [0, 1) from the same seeded stream (used
    /// for failure injection).
    pub fn uniform(&mut self) -> f64 {
        self.rng.random::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cv_is_identity() {
        let mut n = NoiseModel::disabled(42);
        for _ in 0..100 {
            assert_eq!(n.factor(), 1.0);
        }
        let d = SimDuration::from_secs(3);
        assert_eq!(n.jitter(d), d);
    }

    #[test]
    fn mean_is_approximately_one() {
        let mut n = NoiseModel::new(7, 0.2);
        let samples = 200_000;
        let mean: f64 = (0..samples).map(|_| n.factor()).sum::<f64>() / samples as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn cv_is_approximately_configured() {
        let mut n = NoiseModel::new(9, 0.3);
        let samples = 200_000;
        let xs: Vec<f64> = (0..samples).map(|_| n.factor()).collect();
        let mean = xs.iter().sum::<f64>() / samples as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 0.3).abs() < 0.02, "cv {cv}");
    }

    #[test]
    fn factors_are_positive() {
        let mut n = NoiseModel::new(1, 1.5);
        for _ in 0..10_000 {
            assert!(n.factor() > 0.0);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = NoiseModel::new(5, 0.4);
        let mut b = NoiseModel::new(5, 0.4);
        for _ in 0..100 {
            assert_eq!(a.factor(), b.factor());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NoiseModel::new(5, 0.4);
        let mut b = NoiseModel::new(6, 0.4);
        let same = (0..100).filter(|_| a.factor() == b.factor()).count();
        assert!(same < 5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cv_panics() {
        NoiseModel::new(0, -0.1);
    }
}
