//! Deterministic future-event list.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the future-event list.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. The sequence number breaks timestamp ties in scheduling
        // order, which keeps runs bit-for-bit reproducible.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list: a priority queue of `(SimTime, E)` pairs with a
/// monotone clock and deterministic FIFO tie-breaking at equal timestamps.
///
/// This is the heart of the discrete-event engine: `astra-faas` drives its
/// Lambda lifecycle state machines by popping events from this queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            popped: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of events still pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// Panics if `at` is before the current clock: discrete-event
    /// simulations must never schedule into the past.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduled event at {at} before current time {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedule `event` to fire immediately (at the current clock).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule(self.now, event);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.popped += 1;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), ());
        q.schedule(SimTime::from_micros(3), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(3));
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
        assert!(q.pop().is_none());
        assert_eq!(q.events_processed(), 2);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), ());
        q.pop();
        q.schedule(SimTime::from_micros(5), ());
    }

    #[test]
    fn schedule_now_fires_at_current_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), 1);
        q.pop();
        q.schedule_now(2);
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(10));
        assert_eq!(e, 2);
    }

    proptest! {
        #[test]
        fn popped_timestamps_are_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.schedule(SimTime::from_micros(t), t);
            }
            let mut last = SimTime::ZERO;
            while let Some((at, _)) = q.pop() {
                prop_assert!(at >= last);
                last = at;
            }
            prop_assert_eq!(q.events_processed(), times.len() as u64);
        }

        #[test]
        fn interleaved_schedule_pop_is_monotone(deltas in proptest::collection::vec(0u64..1_000, 1..100)) {
            let mut q = EventQueue::new();
            let mut last = SimTime::ZERO;
            for &d in &deltas {
                q.schedule(q.now() + SimDuration::from_micros(d), ());
                if d % 2 == 0 {
                    if let Some((at, _)) = q.pop() {
                        prop_assert!(at >= last);
                        last = at;
                    }
                }
            }
            while let Some((at, _)) = q.pop() {
                prop_assert!(at >= last);
                last = at;
            }
        }
    }
}
