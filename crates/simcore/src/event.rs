//! Deterministic future-event list.

use crate::time::SimTime;

/// An entry in the future-event list.
///
/// Time and sequence number are packed into one `u128` key
/// (`time << 64 | seq`), so the heap's ordering is a single integer
/// comparison instead of a two-field lexicographic compare. Because the
/// sequence number occupies the low 64 bits, the packed ordering is
/// exactly the `(time, seq)` lexicographic order the simulator's
/// determinism guarantee is built on.
struct Scheduled<E> {
    key: u128,
    event: E,
}

#[inline]
fn pack(at: SimTime, seq: u64) -> u128 {
    ((at.as_micros() as u128) << 64) | seq as u128
}

#[inline]
fn unpack_time(key: u128) -> SimTime {
    SimTime::from_micros((key >> 64) as u64)
}

/// A future-event list: a priority queue of `(SimTime, E)` pairs with a
/// monotone clock and deterministic FIFO tie-breaking at equal timestamps.
///
/// This is the heart of the discrete-event engine: `astra-faas` drives its
/// Lambda lifecycle state machines by popping events from this queue.
///
/// Internally a 4-ary implicit min-heap over packed `(time, seq)` keys.
/// Compared to the binary `std::collections::BinaryHeap` it replaces, the
/// wider fan-out halves the tree depth (fewer cache lines touched per
/// sift) and the packed key makes every comparison one `u128` compare —
/// both measurable wins on the simulator's hot pop/push cycle. The pop
/// order is identical to the old implementation: strictly ascending
/// `(time, seq)`.
pub struct EventQueue<E> {
    heap: Vec<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
    popped: u64,
    sifts: u64,
}

/// Number of children per heap node.
const ARITY: usize = 4;

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue with room for `cap` pending events before the
    /// backing storage reallocates.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(cap),
            now: SimTime::ZERO,
            next_seq: 0,
            popped: 0,
            sifts: 0,
        }
    }

    /// Reserve room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Reset to a fresh queue — clock at zero, no pending events, all
    /// counters zeroed — while keeping the heap's allocated capacity.
    /// This is what lets a sim arena reuse one queue across batch cases:
    /// after `clear()` the queue is observationally identical to
    /// [`EventQueue::new`], so replays stay bit-deterministic.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.now = SimTime::ZERO;
        self.next_seq = 0;
        self.popped = 0;
        self.sifts = 0;
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of heap-entry swaps performed by sift-up/sift-down so far.
    ///
    /// A load-factor diagnostic for the hot pop/push cycle: it grows with
    /// `events × log₄(pending)`, so a jump at constant event count means
    /// the pending-event population got deeper. Exported as the
    /// `engine.heap_sifts` telemetry counter.
    pub fn heap_sifts(&self) -> u64 {
        self.sifts
    }

    /// Number of events still pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// Panics if `at` is before the current clock: discrete-event
    /// simulations must never schedule into the past.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduled event at {at} before current time {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            key: pack(at, seq),
            event,
        });
        self.sift_up(self.heap.len() - 1);
    }

    /// Schedule `event` to fire immediately (at the current clock).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule(self.now, event);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let entry = self.heap.swap_remove(0);
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        let at = unpack_time(entry.key);
        debug_assert!(at >= self.now);
        self.now = at;
        self.popped += 1;
        Some((at, entry.event))
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| unpack_time(e.key))
    }

    /// Move the entry at `i` up until its parent is no larger.
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.heap[parent].key <= self.heap[i].key {
                break;
            }
            self.heap.swap(i, parent);
            self.sifts += 1;
            i = parent;
        }
    }

    /// Move the entry at `i` down until no child is smaller.
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + ARITY).min(len);
            let mut smallest = first_child;
            for c in first_child + 1..last_child {
                if self.heap[c].key < self.heap[smallest].key {
                    smallest = c;
                }
            }
            if self.heap[i].key <= self.heap[smallest].key {
                break;
            }
            self.heap.swap(i, smallest);
            self.sifts += 1;
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), ());
        q.schedule(SimTime::from_micros(3), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(3));
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
        assert!(q.pop().is_none());
        assert_eq!(q.events_processed(), 2);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), ());
        q.pop();
        q.schedule(SimTime::from_micros(5), ());
    }

    #[test]
    fn schedule_now_fires_at_current_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), 1);
        q.pop();
        q.schedule_now(2);
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(10));
        assert_eq!(e, 2);
    }

    #[test]
    fn sift_counter_grows_with_out_of_order_load() {
        let mut q = EventQueue::new();
        // Ascending schedule order: pushes never sift up.
        for t in 0..8 {
            q.schedule(SimTime::from_micros(t), ());
        }
        let after_pushes = q.heap_sifts();
        while q.pop().is_some() {}
        // Popping a populated heap must have sifted at least once.
        assert!(q.heap_sifts() > after_pushes);
    }

    #[test]
    fn clear_restores_the_fresh_queue_contract() {
        let mut q = EventQueue::with_capacity(4);
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(20), 2);
        q.pop();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.events_processed(), 0);
        assert_eq!(q.heap_sifts(), 0);
        // Scheduling at t=0 works again (the clock really went back),
        // and seq restarts so tie-breaking replays identically.
        q.schedule(SimTime::ZERO, 7);
        q.schedule(SimTime::ZERO, 8);
        assert_eq!(q.pop(), Some((SimTime::ZERO, 7)));
        assert_eq!(q.pop(), Some((SimTime::ZERO, 8)));
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(16);
        assert!(q.is_empty());
        q.reserve(100);
        q.schedule(SimTime::from_micros(1), 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_micros(1), 1)));
    }

    proptest! {
        #[test]
        fn popped_timestamps_are_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.schedule(SimTime::from_micros(t), t);
            }
            let mut last = SimTime::ZERO;
            while let Some((at, _)) = q.pop() {
                prop_assert!(at >= last);
                last = at;
            }
            prop_assert_eq!(q.events_processed(), times.len() as u64);
        }

        #[test]
        fn interleaved_schedule_pop_is_monotone(deltas in proptest::collection::vec(0u64..1_000, 1..100)) {
            let mut q = EventQueue::new();
            let mut last = SimTime::ZERO;
            for &d in &deltas {
                q.schedule(q.now() + SimDuration::from_micros(d), ());
                if d % 2 == 0 {
                    if let Some((at, _)) = q.pop() {
                        prop_assert!(at >= last);
                        last = at;
                    }
                }
            }
            while let Some((at, _)) = q.pop() {
                prop_assert!(at >= last);
                last = at;
            }
        }

        /// Strict FIFO: under an arbitrary interleaving of schedules and
        /// pops, every pop must return exactly what a reference model —
        /// "the pending event with the smallest (time, seq)" — returns.
        /// Events are tagged with their global schedule index so the
        /// assertion checks identity, not just timestamp order.
        #[test]
        fn pops_match_reference_model_under_interleaving(
            script in proptest::collection::vec((0u64..500, 0u8..3), 1..300)
        ) {
            let mut q = EventQueue::new();
            // Reference: a sorted list of (time, seq) pending pairs.
            let mut pending: Vec<(u64, u64)> = Vec::new();
            fn check_pop(q: &mut EventQueue<u64>, pending: &mut Vec<(u64, u64)>) {
                let got = q.pop();
                let want = pending
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(t, s))| (t, s))
                    .map(|(i, _)| i);
                match (got, want) {
                    (None, None) => {}
                    (Some((at, tag)), Some(i)) => {
                        let (t, s) = pending.remove(i);
                        assert_eq!(at.as_micros(), t, "pop time");
                        assert_eq!(tag, s, "pop identity (seq tag)");
                    }
                    (got, want) => panic!("pop mismatch: got {got:?}, want {want:?}"),
                }
            }
            for (seq, &(delta, pops)) in script.iter().enumerate() {
                let seq = seq as u64;
                let at = q.now() + SimDuration::from_micros(delta);
                q.schedule(at, seq);
                pending.push((at.as_micros(), seq));
                for _ in 0..pops {
                    check_pop(&mut q, &mut pending);
                }
            }
            while !pending.is_empty() {
                check_pop(&mut q, &mut pending);
            }
            prop_assert!(q.is_empty());
        }
    }
}
