//! Small descriptive-statistics helpers for experiment reporting.

/// Summary statistics over a sample of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile, linear interpolation).
    pub p50: f64,
    /// 99th percentile (linear interpolation).
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Compute summary statistics. Returns `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        Some(Summary {
            count: n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            p50: percentile(&sorted, 0.50),
            p99: percentile(&sorted, 0.99),
            max: sorted[n - 1],
        })
    }
}

/// Linear-interpolation percentile of a pre-sorted slice. `q` in [0, 1].
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Relative error `|measured - expected| / |expected|`; infinity when the
/// expected value is zero but the measurement is not.
pub fn relative_error(measured: f64, expected: f64) -> f64 {
    if expected == 0.0 {
        if measured == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (measured - expected).abs() / expected.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile(&sorted, 0.5), 5.0);
        assert_eq!(percentile(&sorted, 0.0), 0.0);
        assert_eq!(percentile(&sorted, 1.0), 10.0);
    }

    #[test]
    fn percentile_of_singleton() {
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn relative_error_cases() {
        assert_eq!(relative_error(11.0, 10.0), 0.1);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
    }
}
