//! Byte-level implementations of the three benchmark applications.

use std::collections::BTreeMap;

use astra_mapreduce::MapReduceApp;
use bytes::Bytes;

use crate::datagen::SORT_RECORD_LEN;

/// Wordcount: map tokenises text into a `word\tcount` table; reduce merges
/// tables by summing counts. Exactly associative and commutative.
#[derive(Debug, Default)]
pub struct WordCountApp;

impl WordCountApp {
    fn parse_table(bytes: &[u8]) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for line in bytes.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            let text = std::str::from_utf8(line).expect("wordcount tables are UTF-8");
            let (word, count) = text.rsplit_once('\t').expect("word\\tcount");
            *out.entry(word.to_string()).or_default() +=
                count.parse::<u64>().expect("numeric count");
        }
        out
    }

    fn serialize_table(table: &BTreeMap<String, u64>) -> Vec<u8> {
        let mut out = Vec::new();
        for (word, count) in table {
            out.extend_from_slice(word.as_bytes());
            out.push(b'\t');
            out.extend_from_slice(count.to_string().as_bytes());
            out.push(b'\n');
        }
        out
    }

    /// Reference single-pass count, for validating distributed runs.
    pub fn reference_count(text: &[u8]) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for word in text
            .split(|b| b.is_ascii_whitespace())
            .filter(|w| !w.is_empty())
        {
            let word = String::from_utf8(word.to_vec()).expect("UTF-8 text");
            *out.entry(word).or_default() += 1;
        }
        out
    }
}

impl MapReduceApp for WordCountApp {
    fn name(&self) -> &str {
        "wordcount"
    }

    fn map(&self, input: &[u8]) -> Vec<u8> {
        Self::serialize_table(&Self::reference_count(input))
    }

    fn reduce(&self, inputs: &[Bytes]) -> Vec<u8> {
        let mut merged: BTreeMap<String, u64> = BTreeMap::new();
        for input in inputs {
            for (word, count) in Self::parse_table(input) {
                *merged.entry(word).or_default() += count;
            }
        }
        Self::serialize_table(&merged)
    }
}

/// Sort: map sorts its fixed-width records; reduce k-way-merges sorted
/// runs. With the single-pass schedule each final reducer emits one
/// sorted run (range partitioning is what would make the concatenation
/// globally sorted; per-run sortedness and record conservation are what
/// the tests check, matching what the timing model measures).
#[derive(Debug)]
pub struct SortApp {
    record_len: usize,
}

impl Default for SortApp {
    fn default() -> Self {
        SortApp {
            record_len: SORT_RECORD_LEN,
        }
    }
}

impl SortApp {
    /// A sorter for records of `record_len` bytes (key = first 10).
    pub fn with_record_len(record_len: usize) -> Self {
        assert!(record_len > 0);
        SortApp { record_len }
    }

    fn records<'a>(&self, data: &'a [u8]) -> Vec<&'a [u8]> {
        assert_eq!(
            data.len() % self.record_len,
            0,
            "input is not whole records"
        );
        data.chunks(self.record_len).collect()
    }

    /// Check that `data` consists of whole records in non-decreasing order.
    pub fn is_sorted(&self, data: &[u8]) -> bool {
        let recs = self.records(data);
        recs.windows(2).all(|w| w[0] <= w[1])
    }
}

impl MapReduceApp for SortApp {
    fn name(&self) -> &str {
        "sort"
    }

    fn map(&self, input: &[u8]) -> Vec<u8> {
        let mut recs = self.records(input);
        recs.sort_unstable();
        recs.concat()
    }

    fn reduce(&self, inputs: &[Bytes]) -> Vec<u8> {
        // K-way merge of sorted runs via a cursor per run.
        let runs: Vec<Vec<&[u8]>> = inputs.iter().map(|i| self.records(i)).collect();
        let total: usize = runs.iter().map(Vec::len).sum();
        let mut cursors = vec![0usize; runs.len()];
        let mut out = Vec::with_capacity(total * self.record_len);
        for _ in 0..total {
            let next = (0..runs.len())
                .filter(|&r| cursors[r] < runs[r].len())
                .min_by_key(|&r| runs[r][cursors[r]])
                .expect("total accounts for every record");
            out.extend_from_slice(runs[next][cursors[next]]);
            cursors[next] += 1;
        }
        out
    }
}

/// The aggregation query (AMPLab benchmark query 2 shape):
/// `SELECT SUBSTR(sourceIP, 1, 8), SUM(adRevenue) FROM uservisits
/// GROUP BY SUBSTR(sourceIP, 1, 8)`. Revenue is carried in integer cents
/// so merging is exact and associative.
#[derive(Debug, Default)]
pub struct QueryApp;

impl QueryApp {
    /// IP-prefix length of the GROUP BY key.
    pub const PREFIX_LEN: usize = 8;

    fn parse_aggregates(bytes: &[u8]) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for line in bytes.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            let text = std::str::from_utf8(line).expect("aggregates are UTF-8");
            let (key, cents) = text.rsplit_once('\t').expect("key\\tcents");
            *out.entry(key.to_string()).or_default() +=
                cents.parse::<u64>().expect("numeric cents");
        }
        out
    }

    fn serialize_aggregates(table: &BTreeMap<String, u64>) -> Vec<u8> {
        let mut out = Vec::new();
        for (key, cents) in table {
            out.extend_from_slice(key.as_bytes());
            out.push(b'\t');
            out.extend_from_slice(cents.to_string().as_bytes());
            out.push(b'\n');
        }
        out
    }

    /// Reference single-pass aggregation over raw uservisits CSV.
    pub fn reference_aggregate(csv: &[u8]) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        let text = std::str::from_utf8(csv).expect("UTF-8 CSV");
        for line in text.lines() {
            let mut cols = line.split(',');
            let ip = cols.next().expect("sourceIP");
            let revenue = cols.nth(2).expect("adRevenue");
            let (dollars, cents) = revenue.split_once('.').expect("d.cc");
            let total_cents =
                dollars.parse::<u64>().unwrap() * 100 + cents.parse::<u64>().unwrap();
            let key: String = ip.chars().take(Self::PREFIX_LEN).collect();
            *out.entry(key).or_default() += total_cents;
        }
        out
    }
}

impl MapReduceApp for QueryApp {
    fn name(&self) -> &str {
        "query"
    }

    fn map(&self, input: &[u8]) -> Vec<u8> {
        Self::serialize_aggregates(&Self::reference_aggregate(input))
    }

    fn reduce(&self, inputs: &[Bytes]) -> Vec<u8> {
        let mut merged: BTreeMap<String, u64> = BTreeMap::new();
        for input in inputs {
            for (key, cents) in Self::parse_aggregates(input) {
                *merged.entry(key).or_default() += cents;
            }
        }
        Self::serialize_aggregates(&merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen;
    use proptest::prelude::*;

    #[test]
    fn wordcount_map_counts() {
        let app = WordCountApp;
        let out = app.map(b"a b a c a b");
        assert_eq!(out, b"a\t3\nb\t2\nc\t1\n");
    }

    #[test]
    fn wordcount_reduce_merges() {
        let app = WordCountApp;
        let merged = app.reduce(&[
            Bytes::from_static(b"a\t3\nb\t1\n"),
            Bytes::from_static(b"a\t2\nc\t5\n"),
        ]);
        assert_eq!(merged, b"a\t5\nb\t1\nc\t5\n");
    }

    #[test]
    fn sort_map_sorts_and_preserves_records() {
        let app = SortApp::with_record_len(4);
        let out = app.map(b"zzz1aaa2mmm3");
        assert_eq!(out, b"aaa2mmm3zzz1");
        assert!(app.is_sorted(&out));
    }

    #[test]
    fn sort_reduce_merges_runs() {
        let app = SortApp::with_record_len(2);
        let merged = app.reduce(&[Bytes::from_static(b"acex"), Bytes::from_static(b"bdfy")]);
        // Records: "ac","ex" merged with "bd","fy" -> ac, bd, ex, fy.
        assert_eq!(merged, b"acbdexfy");
        assert!(app.is_sorted(&merged));
    }

    #[test]
    fn query_reference_matches_map_reduce_single() {
        let csv = datagen::uservisits(11, 4_000);
        let app = QueryApp;
        let mapped = app.map(&csv);
        let reduced = app.reduce(&[Bytes::from(mapped)]);
        let reference = QueryApp::reference_aggregate(&csv);
        assert_eq!(QueryApp::parse_aggregates(&reduced), reference);
    }

    proptest! {
        /// Associativity: reducing in two different tree shapes gives the
        /// same result (the coordinator may pick any step schedule).
        #[test]
        fn wordcount_reduce_is_associative(seed in 0u64..50) {
            let app = WordCountApp;
            let parts: Vec<Bytes> = (0..4)
                .map(|i| Bytes::from(app.map(&datagen::zipf_text(seed + i, 2_000, 50))))
                .collect();
            let flat = app.reduce(&parts);
            let left = app.reduce(&[
                Bytes::from(app.reduce(&parts[..2])),
                Bytes::from(app.reduce(&parts[2..])),
            ]);
            prop_assert_eq!(flat, left);
        }

        #[test]
        fn sort_reduce_is_associative(seed in 0u64..50) {
            let app = SortApp::default();
            let parts: Vec<Bytes> = (0..3)
                .map(|i| Bytes::from(app.map(&datagen::sort_records(seed + i, 30))))
                .collect();
            let flat = app.reduce(&parts);
            let nested = app.reduce(&[
                Bytes::from(app.reduce(&parts[..2])),
                parts[2].clone(),
            ]);
            prop_assert_eq!(&flat, &nested);
            prop_assert!(app.is_sorted(&flat));
        }

        #[test]
        fn query_reduce_is_associative(seed in 0u64..50) {
            let app = QueryApp;
            let parts: Vec<Bytes> = (0..4)
                .map(|i| Bytes::from(app.map(&datagen::uservisits(seed + i, 3_000))))
                .collect();
            let flat = app.reduce(&parts);
            let nested = app.reduce(&[
                Bytes::from(app.reduce(&parts[..1])),
                Bytes::from(app.reduce(&parts[1..])),
            ]);
            prop_assert_eq!(flat, nested);
        }

        #[test]
        fn sort_conserves_records(n in 1usize..100, seed in 0u64..20) {
            let app = SortApp::default();
            let data = datagen::sort_records(seed, n);
            let sorted = app.map(&data);
            prop_assert_eq!(sorted.len(), data.len());
            // Same multiset of records.
            let mut orig: Vec<&[u8]> = data.chunks(SORT_RECORD_LEN).collect();
            let mut got: Vec<&[u8]> = sorted.chunks(SORT_RECORD_LEN).collect();
            orig.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(orig, got);
        }
    }
}
