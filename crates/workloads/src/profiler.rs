//! Derive a [`WorkloadProfile`] by measuring a real application.
//!
//! The paper's Performance/Cost Predictors rely on per-workload
//! coefficients (`u_i`, the shuffle proportionality, the per-step
//! reduction ratio) that its authors obtained by profiling the real jobs
//! on AWS. This module does the same against the byte-level runtime:
//! generate sample data, time `map` and `reduce` on this host, measure
//! the actual data-size ratios, and normalise host time to the 128 MB
//! lambda tier through a calibration constant.
//!
//! The *ratios* (shuffle, reduce) are exact — they are measured from real
//! output sizes. The *time* coefficients inherit the host↔lambda
//! calibration factor, exactly as any real profiler's would.

use std::time::Instant;

use astra_mapreduce::MapReduceApp;
use astra_model::WorkloadProfile;
use bytes::Bytes;

/// How to translate host measurements into model coefficients.
#[derive(Debug, Clone, Copy)]
pub struct ProfilerConfig {
    /// Host-seconds-per-MB × this factor = 128 MB-lambda-seconds-per-MB.
    /// A modern host core is roughly as fast as the lambda vCPU ceiling
    /// (14 × the 128 MB tier), so ~14 is a reasonable default; measure
    /// once per host for accuracy.
    pub host_to_128_factor: f64,
    /// Number of timing repetitions (median taken).
    pub repetitions: usize,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            host_to_128_factor: 14.0,
            repetitions: 3,
        }
    }
}

/// Measured characteristics of an app on sample data.
#[derive(Debug, Clone)]
pub struct ProfileMeasurement {
    /// Host seconds per MB of `map` input.
    pub map_host_secs_per_mb: f64,
    /// Host seconds per MB of `reduce` input.
    pub reduce_host_secs_per_mb: f64,
    /// Measured mapper output / input ratio.
    pub shuffle_ratio: f64,
    /// Measured reduce output / input ratio.
    pub reduce_ratio: f64,
}

impl ProfileMeasurement {
    /// Convert to a model profile under `config`'s calibration.
    pub fn into_profile(self, name: impl Into<String>, config: &ProfilerConfig) -> WorkloadProfile {
        WorkloadProfile {
            name: name.into(),
            map_secs_per_mb_128: self.map_host_secs_per_mb * config.host_to_128_factor,
            reduce_secs_per_mb_128: self.reduce_host_secs_per_mb * config.host_to_128_factor,
            coord_secs_per_mb_128: 0.002,
            // Ratios are clamped to the model's valid ranges: an expanding
            // reduce (ratio > 1) is folded to 1.0 with the expansion noted
            // in the shuffle ratio instead.
            shuffle_ratio: self.shuffle_ratio.max(1e-6),
            reduce_ratio: self.reduce_ratio.clamp(1e-6, 1.0),
            state_object_mb: 1.0,
            single_pass_reduce: false,
        }
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Profile `app` on `samples` (each one mapper's input bytes).
///
/// Panics if `samples` is empty or all-empty.
pub fn profile_app(
    app: &dyn MapReduceApp,
    samples: &[Vec<u8>],
    config: &ProfilerConfig,
) -> ProfileMeasurement {
    assert!(!samples.is_empty(), "need at least one sample");
    let total_in: usize = samples.iter().map(Vec::len).sum();
    assert!(total_in > 0, "samples must contain data");
    let mb_in = total_in as f64 / (1024.0 * 1024.0);

    // Map timing + outputs.
    let mut map_times = Vec::with_capacity(config.repetitions);
    let mut outputs: Vec<Bytes> = Vec::new();
    for rep in 0..config.repetitions.max(1) {
        let t0 = Instant::now();
        let out: Vec<Vec<u8>> = samples.iter().map(|s| app.map(s)).collect();
        map_times.push(t0.elapsed().as_secs_f64());
        if rep == 0 {
            outputs = out.into_iter().map(Bytes::from).collect();
        }
    }
    let shuffle_bytes: usize = outputs.iter().map(Bytes::len).sum();
    let mb_shuffle = shuffle_bytes as f64 / (1024.0 * 1024.0);

    // Reduce timing + output.
    let mut reduce_times = Vec::with_capacity(config.repetitions);
    let mut reduced_len = 0usize;
    for rep in 0..config.repetitions.max(1) {
        let t0 = Instant::now();
        let merged = app.reduce(&outputs);
        reduce_times.push(t0.elapsed().as_secs_f64());
        if rep == 0 {
            reduced_len = merged.len();
        }
    }

    ProfileMeasurement {
        map_host_secs_per_mb: median(map_times) / mb_in,
        reduce_host_secs_per_mb: if mb_shuffle > 0.0 {
            median(reduce_times) / mb_shuffle
        } else {
            0.0
        },
        shuffle_ratio: mb_shuffle / mb_in,
        reduce_ratio: if shuffle_bytes > 0 {
            reduced_len as f64 / shuffle_bytes as f64
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{QueryApp, SortApp, WordCountApp};
    use crate::datagen;

    fn wc_samples() -> Vec<Vec<u8>> {
        (0..4).map(|i| datagen::zipf_text(i, 200_000, 2_000)).collect()
    }

    #[test]
    fn wordcount_profile_shrinks_data() {
        let m = profile_app(&WordCountApp, &wc_samples(), &ProfilerConfig::default());
        // Counting tables are much smaller than the text.
        assert!(m.shuffle_ratio < 0.5, "shuffle {}", m.shuffle_ratio);
        // Merging four tables dedups words across them.
        assert!(m.reduce_ratio < 1.01, "reduce {}", m.reduce_ratio);
        assert!(m.map_host_secs_per_mb > 0.0);
    }

    #[test]
    fn sort_profile_preserves_volume() {
        let samples: Vec<Vec<u8>> = (0..3).map(|i| datagen::sort_records(i, 2_000)).collect();
        let m = profile_app(&SortApp::default(), &samples, &ProfilerConfig::default());
        assert!((m.shuffle_ratio - 1.0).abs() < 1e-9, "sort moves every byte");
        assert!((m.reduce_ratio - 1.0).abs() < 1e-9, "merging preserves records");
    }

    #[test]
    fn query_profile_aggregates_heavily() {
        let samples: Vec<Vec<u8>> = (0..3).map(|i| datagen::uservisits(i, 300_000)).collect();
        let m = profile_app(&QueryApp, &samples, &ProfilerConfig::default());
        assert!(m.shuffle_ratio < 0.6, "aggregates are small: {}", m.shuffle_ratio);
    }

    #[test]
    fn measurement_converts_to_a_valid_profile() {
        let m = profile_app(&WordCountApp, &wc_samples(), &ProfilerConfig::default());
        let profile = m.into_profile("measured-wordcount", &ProfilerConfig::default());
        profile.validate();
        assert_eq!(profile.name, "measured-wordcount");
        assert!(profile.map_secs_per_mb_128 > 0.0);
    }

    #[test]
    fn measured_profile_plans_end_to_end() {
        // The full loop the paper implies: profile a real app, feed the
        // profile to the planner, get a plan.
        use astra_core::{Astra, Objective};
        use astra_model::JobSpec;
        let m = profile_app(&WordCountApp, &wc_samples(), &ProfilerConfig::default());
        let profile = m.into_profile("measured", &ProfilerConfig::default());
        let job = JobSpec::uniform("measured-job", 20, 51.2, profile);
        let plan = Astra::with_defaults()
            .plan(&job, Objective::fastest())
            .expect("measured profiles are plannable");
        assert!(plan.mappers() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_rejected() {
        profile_app(&WordCountApp, &[], &ProfilerConfig::default());
    }
}
