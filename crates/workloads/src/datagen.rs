//! Seeded synthetic data generators for the byte-level runs.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generate roughly `target_bytes` of whitespace-separated text with a
/// Zipf-distributed vocabulary — the natural-language shape Wordcount
/// cares about (a few very frequent words, a long tail).
pub fn zipf_text(seed: u64, target_bytes: usize, vocabulary: usize) -> Vec<u8> {
    assert!(vocabulary > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    // Zipf(s = 1.1) cumulative weights over "w0".."w{V-1}".
    let s = 1.1;
    let mut cumulative = Vec::with_capacity(vocabulary);
    let mut total = 0.0;
    for rank in 1..=vocabulary {
        total += 1.0 / (rank as f64).powf(s);
        cumulative.push(total);
    }
    let mut out = Vec::with_capacity(target_bytes + 16);
    while out.len() < target_bytes {
        let u: f64 = rng.random::<f64>() * total;
        let idx = cumulative.partition_point(|&c| c < u);
        out.extend_from_slice(format!("w{idx}").as_bytes());
        out.push(b' ');
    }
    out
}

/// Length of one sort record: 10-byte key + 90-byte payload, newline-free
/// (the gensort convention the sort benchmark uses).
pub const SORT_RECORD_LEN: usize = 100;

/// Generate `n` fixed-width sort records with random alphanumeric keys.
pub fn sort_records(seed: u64, n: usize) -> Vec<u8> {
    const ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n * SORT_RECORD_LEN);
    for i in 0..n {
        for _ in 0..10 {
            out.push(ALPHABET[rng.random_range(0..ALPHABET.len())]);
        }
        // Deterministic payload tagging the record's origin, padded to 90.
        let payload = format!("payload-{i:016}");
        let mut body = payload.into_bytes();
        body.resize(SORT_RECORD_LEN - 10, b'.');
        out.extend_from_slice(&body);
    }
    out
}

/// One synthetic `uservisits` row in the AMPLab big-data-benchmark schema:
/// `sourceIP,destURL,visitDate,adRevenue,userAgent,countryCode,
/// languageCode,searchWord,duration`.
fn uservisits_row(rng: &mut StdRng, out: &mut Vec<u8>) {
    let ip = format!(
        "{}.{}.{}.{}",
        rng.random_range(1..224u16),
        rng.random_range(0..256u16),
        rng.random_range(0..256u16),
        rng.random_range(1..255u16)
    );
    let url = format!("url{}.example.com/page{}", rng.random_range(0..1000u32), rng.random_range(0..100u32));
    let date = format!(
        "20{:02}-{:02}-{:02}",
        rng.random_range(0..20u8),
        rng.random_range(1..13u8),
        rng.random_range(1..29u8)
    );
    // Ad revenue in whole cents so aggregation is exact.
    let revenue_cents: u32 = rng.random_range(1..100_000);
    let row = format!(
        "{ip},{url},{date},{}.{:02},agent{},{},{},word{},{}\n",
        revenue_cents / 100,
        revenue_cents % 100,
        rng.random_range(0..50u8),
        ["US", "DE", "CN", "IN", "BR"][rng.random_range(0..5usize)],
        ["en", "de", "zh", "hi", "pt"][rng.random_range(0..5usize)],
        rng.random_range(0..1000u32),
        rng.random_range(1..600u32),
    );
    out.extend_from_slice(row.as_bytes());
}

/// Generate roughly `target_bytes` of uservisits CSV.
pub fn uservisits(seed: u64, target_bytes: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(target_bytes + 128);
    while out.len() < target_bytes {
        uservisits_row(&mut rng, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn zipf_text_is_seeded_and_skewed() {
        let a = zipf_text(1, 20_000, 1000);
        let b = zipf_text(1, 20_000, 1000);
        assert_eq!(a, b, "same seed, same text");
        let c = zipf_text(2, 20_000, 1000);
        assert_ne!(a, c);

        let text = String::from_utf8(a).unwrap();
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for w in text.split_whitespace() {
            *counts.entry(w).or_default() += 1;
        }
        // Zipf: the most frequent word dominates the median one.
        let max = counts.values().max().unwrap();
        let w0 = counts.get("w0").copied().unwrap_or(0);
        assert!(w0 * 2 >= *max, "w0 should be (near-)modal");
        assert!(*max > 20 * counts.values().sum::<usize>() / counts.len() / 2);
    }

    #[test]
    fn sort_records_have_fixed_width() {
        let data = sort_records(7, 50);
        assert_eq!(data.len(), 50 * SORT_RECORD_LEN);
        // Keys are alphanumeric.
        for rec in data.chunks(SORT_RECORD_LEN) {
            assert!(rec[..10].iter().all(|b| b.is_ascii_alphanumeric()));
        }
        assert_eq!(sort_records(7, 50), data);
    }

    #[test]
    fn uservisits_rows_have_nine_columns() {
        let data = uservisits(3, 10_000);
        let text = String::from_utf8(data).unwrap();
        let mut rows = 0;
        for line in text.lines() {
            assert_eq!(line.split(',').count(), 9, "bad row: {line}");
            rows += 1;
        }
        assert!(rows > 50);
    }

    #[test]
    fn uservisits_revenue_parses_as_cents() {
        let data = uservisits(4, 5_000);
        let text = String::from_utf8(data).unwrap();
        for line in text.lines() {
            let revenue = line.split(',').nth(3).unwrap();
            let (dollars, cents) = revenue.split_once('.').unwrap();
            dollars.parse::<u64>().unwrap();
            assert_eq!(cents.len(), 2);
            cents.parse::<u64>().unwrap();
        }
    }
}
