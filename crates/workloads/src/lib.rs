#![warn(missing_docs)]

//! The paper's three evaluation workloads — Wordcount, Sort, and the
//! aggregation Query over the uservisits dataset — as (a) calibrated
//! model profiles at paper scale for the simulator, and (b) real
//! byte-level applications with seeded synthetic data generators for
//! correctness validation.
//!
//! ## Substitution note (see DESIGN.md)
//!
//! The paper uses the AMPLab big-data-benchmark `uservisits` dataset
//! (25.4 GB, 155 M rows) and unspecified Wordcount/Sort corpora. We
//! generate synthetic equivalents with the same schema, record widths and
//! object layout; the planner and all timing experiments depend only on
//! object counts/sizes and per-byte compute intensities, which the
//! [`profiles`] module calibrates per workload. Byte-level runs validate
//! analytics *correctness* at MB scale; GB-scale runs happen on the
//! simulator where objects are sizes.

pub mod apps;
pub mod apps_sketch;
pub mod datagen;
pub mod profiler;
pub mod profiles;
pub mod spec;

pub use apps::{QueryApp, SortApp, WordCountApp};
pub use apps_sketch::{DistinctUsersApp, TopUrlsApp};
pub use profiler::{profile_app, ProfileMeasurement, ProfilerConfig};
pub use spec::WorkloadSpec;
