//! Sketch-based analytics apps — the "convertible to the MapReduce form"
//! workloads the paper's Discussion gestures at.
//!
//! Both apps emit a *sketch* as their intermediate representation, so the
//! shuffle volume is constant in the input size (kilobytes per mapper)
//! and the reduce merge is associative by construction — ideal shape for
//! the serverless framework, and a very different profile from
//! Wordcount/Sort/Query.

use astra_mapreduce::MapReduceApp;
use astra_sketch::{HyperLogLog, SpaceSaving};
use bytes::Bytes;

/// Approximate COUNT(DISTINCT sourceIP) over uservisits rows, via
/// HyperLogLog.
#[derive(Debug)]
pub struct DistinctUsersApp {
    precision: u8,
}

impl Default for DistinctUsersApp {
    fn default() -> Self {
        DistinctUsersApp { precision: 12 }
    }
}

impl DistinctUsersApp {
    /// Use a custom HLL precision (4..=16).
    pub fn with_precision(precision: u8) -> Self {
        DistinctUsersApp { precision }
    }

    /// Parse a serialized sketch back out of a result object.
    pub fn parse_result(bytes: &[u8]) -> Option<HyperLogLog> {
        HyperLogLog::from_line(std::str::from_utf8(bytes).ok()?.trim())
    }

    /// Exact reference count of distinct sourceIPs.
    pub fn reference_distinct(csv: &[u8]) -> usize {
        let text = std::str::from_utf8(csv).expect("UTF-8 CSV");
        let mut set = std::collections::HashSet::new();
        for line in text.lines() {
            if let Some(ip) = line.split(',').next() {
                set.insert(ip.to_string());
            }
        }
        set.len()
    }
}

impl MapReduceApp for DistinctUsersApp {
    fn name(&self) -> &str {
        "distinct-users"
    }

    fn map(&self, input: &[u8]) -> Vec<u8> {
        let text = std::str::from_utf8(input).expect("UTF-8 CSV");
        let mut sketch = HyperLogLog::new(self.precision);
        for line in text.lines() {
            if let Some(ip) = line.split(',').next() {
                sketch.insert(ip.as_bytes());
            }
        }
        sketch.to_line().into_bytes()
    }

    fn reduce(&self, inputs: &[Bytes]) -> Vec<u8> {
        let mut merged = HyperLogLog::new(self.precision);
        for input in inputs {
            let line = std::str::from_utf8(input).expect("UTF-8 sketch");
            let sketch = HyperLogLog::from_line(line.trim()).expect("valid sketch");
            merged.merge(&sketch);
        }
        merged.to_line().into_bytes()
    }
}

/// Approximate top-k destination URLs by visit count, via SpaceSaving.
#[derive(Debug)]
pub struct TopUrlsApp {
    capacity: usize,
}

impl Default for TopUrlsApp {
    fn default() -> Self {
        TopUrlsApp { capacity: 64 }
    }
}

impl TopUrlsApp {
    /// Use a custom counter capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        TopUrlsApp { capacity }
    }

    /// Parse a serialized summary back out of a result object.
    pub fn parse_result(bytes: &[u8]) -> Option<SpaceSaving> {
        SpaceSaving::from_lines(std::str::from_utf8(bytes).ok()?)
    }

    /// Exact reference counts per URL.
    pub fn reference_counts(csv: &[u8]) -> std::collections::HashMap<String, u64> {
        let text = std::str::from_utf8(csv).expect("UTF-8 CSV");
        let mut out = std::collections::HashMap::new();
        for line in text.lines() {
            if let Some(url) = line.split(',').nth(1) {
                *out.entry(url.to_string()).or_default() += 1;
            }
        }
        out
    }
}

impl MapReduceApp for TopUrlsApp {
    fn name(&self) -> &str {
        "top-urls"
    }

    fn map(&self, input: &[u8]) -> Vec<u8> {
        let text = std::str::from_utf8(input).expect("UTF-8 CSV");
        let mut summary = SpaceSaving::new(self.capacity);
        for line in text.lines() {
            if let Some(url) = line.split(',').nth(1) {
                summary.insert(url);
            }
        }
        summary.to_lines().into_bytes()
    }

    fn reduce(&self, inputs: &[Bytes]) -> Vec<u8> {
        let mut merged = SpaceSaving::new(self.capacity);
        for input in inputs {
            let text = std::str::from_utf8(input).expect("UTF-8 summary");
            let summary = SpaceSaving::from_lines(text).expect("valid summary");
            merged.merge(&summary);
        }
        merged.to_lines().into_bytes()
    }
}

/// A model profile for sketch workloads: scan-dominated map, near-zero
/// shuffle (a sketch is a few KB whatever the input), trivial reduce.
pub fn sketch_profile(name: &str) -> astra_model::WorkloadProfile {
    astra_model::WorkloadProfile {
        name: name.to_string(),
        map_secs_per_mb_128: 0.4,
        reduce_secs_per_mb_128: 0.2,
        coord_secs_per_mb_128: 0.001,
        shuffle_ratio: 0.001,
        reduce_ratio: 1.0,
        state_object_mb: 1.0,
        single_pass_reduce: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen;
    use astra_simcore::summary::relative_error;

    fn csv(seed: u64) -> Vec<u8> {
        datagen::uservisits(seed, 80_000)
    }

    #[test]
    fn distinct_users_single_mapper_is_accurate() {
        let data = csv(1);
        let app = DistinctUsersApp::default();
        let mapped = app.map(&data);
        let sketch = DistinctUsersApp::parse_result(&mapped).unwrap();
        let truth = DistinctUsersApp::reference_distinct(&data) as f64;
        let err = relative_error(sketch.estimate(), truth);
        assert!(err < 0.08, "estimate {} truth {truth}", sketch.estimate());
    }

    #[test]
    fn distinct_users_distributed_matches_union() {
        let app = DistinctUsersApp::default();
        let parts: Vec<Bytes> = (0..4).map(|i| Bytes::from(app.map(&csv(i)))).collect();
        let merged = app.reduce(&parts);
        let sketch = DistinctUsersApp::parse_result(&merged).unwrap();
        let mut all = Vec::new();
        for i in 0..4 {
            all.extend_from_slice(&csv(i));
        }
        let truth = DistinctUsersApp::reference_distinct(&all) as f64;
        let err = relative_error(sketch.estimate(), truth);
        assert!(err < 0.08, "estimate {} truth {truth}", sketch.estimate());
    }

    #[test]
    fn distinct_users_reduce_is_tree_shape_invariant() {
        let app = DistinctUsersApp::default();
        let parts: Vec<Bytes> = (0..4).map(|i| Bytes::from(app.map(&csv(i)))).collect();
        let flat = app.reduce(&parts);
        let nested = app.reduce(&[
            Bytes::from(app.reduce(&parts[..2])),
            Bytes::from(app.reduce(&parts[2..])),
        ]);
        assert_eq!(flat, nested, "HLL merge is exactly associative");
    }

    #[test]
    fn top_urls_finds_the_hot_url() {
        // Inject a dominant URL into generated traffic.
        let mut data = csv(5);
        for _ in 0..2_000 {
            data.extend_from_slice(
                b"1.2.3.4,hot.example.com/front,2019-01-01,1.00,agent0,US,en,word1,10\n",
            );
        }
        let app = TopUrlsApp::default();
        let merged = app.reduce(&[Bytes::from(app.map(&data))]);
        let summary = TopUrlsApp::parse_result(&merged).unwrap();
        let top = summary.top(1);
        assert_eq!(top[0].0, "hot.example.com/front");
        assert!(top[0].1 >= 2_000);
    }

    #[test]
    fn sketch_shuffle_is_tiny() {
        // The profile claim: mapper output is KBs regardless of input MBs.
        let data = csv(2);
        let app = DistinctUsersApp::default();
        let out = app.map(&data);
        assert!(out.len() < 10_000, "sketch is {} bytes", out.len());
        assert!(data.len() > 50_000);
    }

    #[test]
    fn sketch_profile_validates_and_plans() {
        use astra_core::{Astra, Objective};
        let profile = sketch_profile("distinct-users");
        profile.validate();
        let job = astra_model::JobSpec::uniform("sketchy", 50, 100.0, profile);
        let plan = Astra::with_defaults()
            .plan(&job, Objective::fastest())
            .unwrap();
        assert!(plan.mappers() >= 1);
    }
}
