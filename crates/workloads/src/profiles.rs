//! Calibrated workload profiles.
//!
//! In the paper these coefficients come from profiling the real jobs on
//! AWS Lambda; here they are calibrated constants chosen to reproduce the
//! qualitative behaviour the paper reports (who is compute-bound vs
//! IO-bound, how much data each phase moves) while keeping every lambda
//! under the 900 s timeout at paper scale. EXPERIMENTS.md records the
//! resulting absolute numbers next to the paper's.

use astra_model::WorkloadProfile;

/// Wordcount: compute-heavy map (tokenising), tiny shuffle (word→count
/// tables are far smaller than the text), shrinking reduce (merging
/// tables dedups words).
pub fn wordcount() -> WorkloadProfile {
    WorkloadProfile {
        name: "wordcount".to_string(),
        map_secs_per_mb_128: 0.9,
        reduce_secs_per_mb_128: 0.6,
        coord_secs_per_mb_128: 0.002,
        shuffle_ratio: 0.05,
        reduce_ratio: 0.6,
        state_object_mb: 1.0,
        single_pass_reduce: false,
    }
}

/// Sort: IO-dominated — every byte moves through the shuffle
/// (`shuffle_ratio = 1`), merging preserves volume (`reduce_ratio = 1`),
/// and the output is range-partitioned so one reduce pass suffices
/// (Table III: 7 reducers, 1 step for 100 GB).
pub fn sort() -> WorkloadProfile {
    WorkloadProfile {
        name: "sort".to_string(),
        map_secs_per_mb_128: 0.2,
        reduce_secs_per_mb_128: 0.2,
        coord_secs_per_mb_128: 0.001,
        shuffle_ratio: 1.0,
        reduce_ratio: 1.0,
        state_object_mb: 1.0,
        single_pass_reduce: true,
    }
}

/// Query (aggregation over uservisits): scan-heavy map with a tiny
/// grouped-aggregate output, reduce merges aggregates.
pub fn query() -> WorkloadProfile {
    WorkloadProfile {
        name: "query".to_string(),
        map_secs_per_mb_128: 0.45,
        reduce_secs_per_mb_128: 0.7,
        coord_secs_per_mb_128: 0.002,
        shuffle_ratio: 0.03,
        reduce_ratio: 0.5,
        state_object_mb: 1.0,
        single_pass_reduce: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        wordcount().validate();
        sort().validate();
        query().validate();
    }

    #[test]
    fn sort_moves_everything_wordcount_little() {
        assert_eq!(sort().shuffle_ratio, 1.0);
        assert!(wordcount().shuffle_ratio < 0.1);
        assert!(query().shuffle_ratio < 0.1);
    }

    #[test]
    fn only_sort_is_single_pass() {
        assert!(sort().single_pass_reduce);
        assert!(!wordcount().single_pass_reduce);
        assert!(!query().single_pass_reduce);
    }
}
