//! Paper-scale workload specifications and their byte-level twins.

use std::sync::Arc;

use astra_mapreduce::{keys, MapReduceApp};
use astra_model::{JobSpec, WorkloadProfile};
use astra_storage::MemStore;

use crate::apps::{QueryApp, SortApp, WordCountApp};
use crate::datagen;
use crate::profiles;

/// One of the paper's evaluation workloads at its paper-reported scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadSpec {
    /// Wordcount with 1, 10 or 20 GB of text (other sizes allowed; the
    /// object layout then defaults to 512 MB objects).
    Wordcount {
        /// Input size in GB.
        gb: u32,
    },
    /// Sort with 100 GB in 200 objects of 500 MB (Sec. V: "each of the
    /// 200 objects is as large as 500 MB").
    Sort100,
    /// The aggregation query over uservisits: 25.4 GB in 202 objects
    /// (Sec. V: "stored in S3 as 202 objects").
    QueryUservisits,
}

impl WorkloadSpec {
    /// Shorthand for `Wordcount { gb }`.
    pub fn wordcount_gb(gb: u32) -> Self {
        WorkloadSpec::Wordcount { gb }
    }

    /// All five workloads of Fig. 7/8, in paper order.
    pub fn paper_suite() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::Wordcount { gb: 1 },
            WorkloadSpec::Wordcount { gb: 10 },
            WorkloadSpec::Wordcount { gb: 20 },
            WorkloadSpec::Sort100,
            WorkloadSpec::QueryUservisits,
        ]
    }

    /// Display name matching the paper's figure labels.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Wordcount { gb } => format!("Wordcount ({gb}GB)"),
            WorkloadSpec::Sort100 => "Sort (100GB)".to_string(),
            WorkloadSpec::QueryUservisits => "Query (25.4GB)".to_string(),
        }
    }

    /// The calibrated model profile.
    pub fn profile(&self) -> WorkloadProfile {
        match self {
            WorkloadSpec::Wordcount { .. } => profiles::wordcount(),
            WorkloadSpec::Sort100 => profiles::sort(),
            WorkloadSpec::QueryUservisits => profiles::query(),
        }
    }

    /// The paper-scale job: object counts/sizes chosen to reproduce the
    /// layouts Table III implies (e.g. WC 1 GB has 20 objects so that
    /// `k_M = 2` yields the reported 10 mappers).
    pub fn into_job(self) -> JobSpec {
        let profile = self.profile();
        match self {
            WorkloadSpec::Wordcount { gb } => {
                let (n, size_mb) = match gb {
                    1 => (20, 51.2),
                    10 => (24, 10.0 * 1024.0 / 24.0),
                    20 => (40, 512.0),
                    other => ((other as usize * 2).max(1), 512.0),
                };
                JobSpec::uniform(format!("wordcount-{gb}gb"), n, size_mb, profile)
            }
            WorkloadSpec::Sort100 => JobSpec::uniform("sort-100gb", 200, 500.0, profile),
            WorkloadSpec::QueryUservisits => {
                JobSpec::uniform("query-uservisits", 202, 25.4 * 1024.0 / 202.0, profile)
            }
        }
    }

    /// A miniature job with the same profile for byte-level validation:
    /// `n` objects of `object_kb` KB of real generated data.
    pub fn tiny_job(&self, n: usize, object_kb: usize) -> JobSpec {
        JobSpec::uniform(
            format!("tiny-{}", self.profile().name),
            n,
            object_kb as f64 / 1024.0,
            self.profile(),
        )
    }

    /// The byte-level application.
    pub fn app(&self) -> Box<dyn MapReduceApp> {
        match self {
            WorkloadSpec::Wordcount { .. } => Box::new(WordCountApp),
            WorkloadSpec::Sort100 => Box::new(SortApp::default()),
            WorkloadSpec::QueryUservisits => Box::new(QueryApp),
        }
    }

    /// Generate seeded input data for `job` into `store` (byte-level runs
    /// only). Returns the total bytes written.
    pub fn generate_inputs(&self, job: &JobSpec, store: &Arc<MemStore>, seed: u64) -> usize {
        let mut total = 0;
        for (i, &size_mb) in job.object_sizes_mb.iter().enumerate() {
            let target = (size_mb * 1024.0 * 1024.0) as usize;
            let data = match self {
                WorkloadSpec::Wordcount { .. } => {
                    datagen::zipf_text(seed + i as u64, target, 5_000)
                }
                WorkloadSpec::Sort100 => {
                    let n = (target / datagen::SORT_RECORD_LEN).max(1);
                    datagen::sort_records(seed + i as u64, n)
                }
                WorkloadSpec::QueryUservisits => datagen::uservisits(seed + i as u64, target),
            };
            total += data.len();
            store.put(keys::input(&job.name, i), data);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_layouts_match_table_iii_arithmetic() {
        let wc1 = WorkloadSpec::wordcount_gb(1).into_job();
        assert_eq!(wc1.num_objects(), 20);
        assert!((wc1.total_mb() - 1024.0).abs() < 1.0);
        // k_M = 2 -> 10 mappers, as Table III reports.
        assert_eq!(wc1.num_objects().div_ceil(2), 10);

        let wc10 = WorkloadSpec::wordcount_gb(10).into_job();
        assert_eq!(wc10.num_objects(), 24);
        // k_M = 8 -> 3 mappers.
        assert_eq!(wc10.num_objects().div_ceil(8), 3);

        let wc20 = WorkloadSpec::wordcount_gb(20).into_job();
        assert_eq!(wc20.num_objects(), 40);
        // k_M = 4 -> 10 mappers.
        assert_eq!(wc20.num_objects().div_ceil(4), 10);

        let sort = WorkloadSpec::Sort100.into_job();
        assert_eq!(sort.num_objects(), 200);
        assert_eq!(sort.object_sizes_mb[0], 500.0);
        // k_M = 4 -> 50 mappers; k_R = 8 -> 7 reducers in 1 step.
        assert_eq!(sort.num_objects().div_ceil(4), 50);
        assert_eq!(50usize.div_ceil(8), 7);

        let query = WorkloadSpec::QueryUservisits.into_job();
        assert_eq!(query.num_objects(), 202);
        assert!((query.total_mb() - 25.4 * 1024.0).abs() < 1.0);
    }

    #[test]
    fn labels_match_paper_axis_names() {
        assert_eq!(WorkloadSpec::wordcount_gb(10).label(), "Wordcount (10GB)");
        assert_eq!(WorkloadSpec::Sort100.label(), "Sort (100GB)");
        assert_eq!(WorkloadSpec::QueryUservisits.label(), "Query (25.4GB)");
    }

    #[test]
    fn paper_suite_has_five_workloads() {
        assert_eq!(WorkloadSpec::paper_suite().len(), 5);
    }

    #[test]
    fn tiny_inputs_generate_expected_sizes() {
        let spec = WorkloadSpec::wordcount_gb(1);
        let job = spec.tiny_job(4, 16);
        let store = Arc::new(MemStore::new());
        let written = spec.generate_inputs(&job, &store, 42);
        assert_eq!(store.object_count(), 4);
        // Each object is ~16 KB (generators overshoot by <1 word/record).
        assert!(written >= 4 * 16 * 1024);
        assert!(written < 4 * 17 * 1024 + 512);
    }

    #[test]
    fn sort_tiny_inputs_are_whole_records() {
        let spec = WorkloadSpec::Sort100;
        let job = spec.tiny_job(2, 10);
        let store = Arc::new(MemStore::new());
        spec.generate_inputs(&job, &store, 1);
        for i in 0..2 {
            let data = store.get(&keys::input(&job.name, i)).unwrap();
            assert_eq!(data.len() % datagen::SORT_RECORD_LEN, 0);
        }
    }
}
