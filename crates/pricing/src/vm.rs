//! EC2 / EMR instance pricing for the VM baseline (Fig. 9).

use serde::{Deserialize, Serialize};

use crate::money::Money;

/// Hourly pricing for a VM instance running under EMR.
///
/// The paper's Fig. 9 baseline uses three on-demand `m3.xlarge` instances.
/// EMR bills the EC2 on-demand rate plus an EMR service fee, per second with
/// a one-minute minimum (2020 billing rules).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmPricing {
    /// EC2 on-demand price per hour.
    pub ec2_per_hour: Money,
    /// EMR service fee per instance-hour.
    pub emr_per_hour: Money,
    /// Minimum billed duration in microseconds (60 s for EMR).
    pub min_billed_us: u64,
}

/// `m3.xlarge`: 4 vCPU, 15 GiB RAM; $0.266/h on demand + $0.070/h EMR fee.
pub const M3_XLARGE: VmPricing = VmPricing {
    ec2_per_hour: Money::from_micros(266_000),
    emr_per_hour: Money::from_micros(70_000),
    min_billed_us: 60_000_000,
};

impl VmPricing {
    /// Total (EC2 + EMR) price per hour for one instance.
    pub fn total_per_hour(&self) -> Money {
        self.ec2_per_hour + self.emr_per_hour
    }

    /// Cost of running `instances` VMs for `duration_us` microseconds,
    /// billed per second with the configured minimum.
    pub fn cluster_cost(&self, instances: u32, duration_us: u64) -> Money {
        let billed_us = duration_us.max(self.min_billed_us);
        // Per-second billing: round up to whole seconds.
        let billed_s = billed_us.div_ceil(1_000_000);
        let hourly = self.total_per_hour();
        hourly.scale(billed_s as f64 / 3600.0) * instances as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hour_three_instances() {
        let cost = M3_XLARGE.cluster_cost(3, 3_600_000_000);
        // 3 * (0.266 + 0.070) = $1.008
        assert_eq!(cost, Money::from_dollars_f64(1.008));
    }

    #[test]
    fn minimum_one_minute_billed() {
        let five_sec = M3_XLARGE.cluster_cost(1, 5_000_000);
        let one_min = M3_XLARGE.cluster_cost(1, 60_000_000);
        assert_eq!(five_sec, one_min);
    }

    #[test]
    fn per_second_rounding_up() {
        let a = M3_XLARGE.cluster_cost(1, 61_000_001);
        let b = M3_XLARGE.cluster_cost(1, 62_000_000);
        assert_eq!(a, b);
    }

    #[test]
    fn cost_scales_with_instances() {
        let one = M3_XLARGE.cluster_cost(1, 3_600_000_000);
        let three = M3_XLARGE.cluster_cost(3, 3_600_000_000);
        assert_eq!(three, one * 3u64);
    }
}
