//! Exact money arithmetic in integer nano-dollars.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of nano-dollars in one dollar.
pub const NANOS_PER_DOLLAR: i128 = 1_000_000_000;

/// A monetary amount stored as integer nano-dollars.
///
/// One S3 GET costs $0.004 / 10 000 = 400 nano-dollars exactly, so every
/// per-request price the paper quotes is representable without rounding.
/// `i128` gives headroom for ~1.7e20 dollars — far beyond any simulated bill.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Money(i128);

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money(0);

    /// Construct from raw nano-dollars.
    pub const fn from_nanos(nanos: i128) -> Self {
        Money(nanos)
    }

    /// Construct from whole dollars.
    pub const fn from_dollars(dollars: i128) -> Self {
        Money(dollars * NANOS_PER_DOLLAR)
    }

    /// Construct from micro-dollars ($1e-6).
    pub const fn from_micros(micros: i128) -> Self {
        Money(micros * 1_000)
    }

    /// Construct from a floating-point dollar amount, rounding to the
    /// nearest nano-dollar. Intended for user-facing budget inputs, not for
    /// accumulation.
    pub fn from_dollars_f64(dollars: f64) -> Self {
        Money((dollars * NANOS_PER_DOLLAR as f64).round() as i128)
    }

    /// Raw nano-dollars.
    pub const fn nanos(self) -> i128 {
        self.0
    }

    /// Value in dollars as `f64` (for display and plotting only).
    pub fn dollars(self) -> f64 {
        self.0 as f64 / NANOS_PER_DOLLAR as f64
    }

    /// Saturating subtraction clamped at zero: how much budget remains.
    pub fn saturating_sub(self, rhs: Money) -> Money {
        Money((self.0 - rhs.0).max(0))
    }

    /// Multiply by a non-negative `f64` scale (e.g. GB-seconds), rounding to
    /// the nearest nano-dollar.
    pub fn scale(self, factor: f64) -> Money {
        Money((self.0 as f64 * factor).round() as i128)
    }

    /// Divide by a positive count, rounding half away from zero instead
    /// of truncating toward it (what `/` does). Use for averaging bills:
    /// truncation systematically undercounts the mean by up to one
    /// nano-dollar per division, which compounds across sweep tables.
    ///
    /// ```
    /// use astra_pricing::Money;
    ///
    /// // 7/2 = 3.5 rounds away from zero; `/` truncates toward it.
    /// assert_eq!(Money::from_nanos(7).div_round(2), Money::from_nanos(4));
    /// assert_eq!(Money::from_nanos(7) / 2, Money::from_nanos(3));
    /// // Negative amounts round symmetrically (-3.5 → -4).
    /// assert_eq!(Money::from_nanos(-7).div_round(2), Money::from_nanos(-4));
    /// // Exact halves go away from zero, not to-even: 2.5 → 3.
    /// assert_eq!(Money::from_nanos(10).div_round(4), Money::from_nanos(3));
    /// ```
    pub const fn div_round(self, rhs: i128) -> Money {
        assert!(rhs > 0, "div_round divisor must be positive");
        let half = rhs / 2;
        if self.0 >= 0 {
            Money((self.0 + half) / rhs)
        } else {
            Money((self.0 - half) / rhs)
        }
    }

    /// True if the amount is strictly negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// The larger of two amounts.
    pub fn max(self, other: Money) -> Money {
        Money(self.0.max(other.0))
    }

    /// The smaller of two amounts.
    pub fn min(self, other: Money) -> Money {
        Money(self.0.min(other.0))
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0 + rhs.0)
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        self.0 += rhs.0;
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money(self.0 - rhs.0)
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        self.0 -= rhs.0;
    }
}

impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Money {
        Money(-self.0)
    }
}

impl Mul<i128> for Money {
    type Output = Money;
    fn mul(self, rhs: i128) -> Money {
        Money(self.0 * rhs)
    }
}

impl Mul<u64> for Money {
    type Output = Money;
    fn mul(self, rhs: u64) -> Money {
        Money(self.0 * rhs as i128)
    }
}

impl Div<i128> for Money {
    type Output = Money;
    fn div(self, rhs: i128) -> Money {
        Money(self.0 / rhs)
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        let dollars = abs / NANOS_PER_DOLLAR as u128;
        let frac = abs % NANOS_PER_DOLLAR as u128;
        // Print with enough precision that sub-cent serverless charges are
        // visible, trimming trailing zeros down to two decimals.
        let mut frac_str = format!("{frac:09}");
        while frac_str.len() > 2 && frac_str.ends_with('0') {
            frac_str.pop();
        }
        write!(f, "{sign}${dollars}.{frac_str}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn get_request_price_is_exact() {
        // $0.004 per 10 000 GETs => 400 nano-dollars each.
        let per_get = Money::from_dollars_f64(0.004) / 10_000;
        assert_eq!(per_get, Money::from_nanos(400));
    }

    #[test]
    fn put_request_price_is_exact() {
        // $0.005 per 1 000 PUTs => 5 000 nano-dollars each.
        let per_put = Money::from_dollars_f64(0.005) / 1_000;
        assert_eq!(per_put, Money::from_nanos(5_000));
    }

    #[test]
    fn display_formats_small_amounts() {
        assert_eq!(Money::from_nanos(400).to_string(), "$0.0000004");
        assert_eq!(Money::from_dollars(3).to_string(), "$3.00");
        assert_eq!((-Money::from_dollars(1)).to_string(), "-$1.00");
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = Money::from_dollars(1);
        let b = Money::from_dollars(2);
        assert_eq!(a.saturating_sub(b), Money::ZERO);
        assert_eq!(b.saturating_sub(a), Money::from_dollars(1));
    }

    #[test]
    fn scale_rounds_to_nearest() {
        let m = Money::from_nanos(10);
        assert_eq!(m.scale(0.26), Money::from_nanos(3));
        assert_eq!(m.scale(0.24), Money::from_nanos(2));
    }

    #[test]
    fn sum_of_iter() {
        let total: Money = (0..10).map(Money::from_dollars).sum();
        assert_eq!(total, Money::from_dollars(45));
    }

    #[test]
    fn div_round_rounds_to_nearest() {
        // 7 / 2 = 3.5 → 4 (truncating `/` gives 3).
        assert_eq!(Money::from_nanos(7).div_round(2), Money::from_nanos(4));
        assert_eq!(Money::from_nanos(7) / 2, Money::from_nanos(3));
        assert_eq!(Money::from_nanos(6).div_round(2), Money::from_nanos(3));
        // 10 / 4 = 2.5 → 3 (half away from zero).
        assert_eq!(Money::from_nanos(10).div_round(4), Money::from_nanos(3));
        assert_eq!(Money::from_nanos(9).div_round(4), Money::from_nanos(2));
        // Negative amounts round symmetrically.
        assert_eq!(Money::from_nanos(-7).div_round(2), Money::from_nanos(-4));
        assert_eq!(Money::ZERO.div_round(5), Money::ZERO);
    }

    proptest! {
        #[test]
        fn div_round_error_is_at_most_half(a in -1_000_000_000i128..1_000_000_000, n in 1i128..1_000) {
            let q = Money::from_nanos(a).div_round(n).nanos();
            // |a - q·n| ≤ n/2: rounding to nearest never strays more than
            // half a divisor from the exact quotient.
            prop_assert!((a - q * n).abs() * 2 <= n);
        }

        #[test]
        fn add_is_commutative(a in -1_000_000_000i128..1_000_000_000, b in -1_000_000_000i128..1_000_000_000) {
            prop_assert_eq!(Money::from_nanos(a) + Money::from_nanos(b),
                            Money::from_nanos(b) + Money::from_nanos(a));
        }

        #[test]
        fn add_sub_roundtrip(a in -1_000_000_000i128..1_000_000_000, b in -1_000_000_000i128..1_000_000_000) {
            let (a, b) = (Money::from_nanos(a), Money::from_nanos(b));
            prop_assert_eq!(a + b - b, a);
        }

        #[test]
        fn dollars_roundtrip_within_nano(d in -1_000.0f64..1_000.0) {
            let m = Money::from_dollars_f64(d);
            prop_assert!((m.dollars() - d).abs() < 1e-9);
        }

        #[test]
        fn mul_distributes_over_add(a in -1_000_000i128..1_000_000, b in -1_000_000i128..1_000_000, k in 0i128..1_000) {
            let (ma, mb) = (Money::from_nanos(a), Money::from_nanos(b));
            prop_assert_eq!((ma + mb) * k, ma * k + mb * k);
        }
    }
}
