//! The combined price catalog consumed by every cost-aware component.

use serde::{Deserialize, Serialize};

use crate::lambda::LambdaPricing;
use crate::s3::S3Pricing;
use crate::vm::{VmPricing, M3_XLARGE};

/// All prices needed to bill a serverless analytics job and its VM baseline.
///
/// The analytical cost model (`astra-model`), the event simulator
/// (`astra-faas` / `astra-storage`) and the EMR baseline share one catalog,
/// so the Fig. 7–9 cost comparisons are internally consistent by
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceCatalog {
    /// Lambda invocation + runtime pricing.
    pub lambda: LambdaPricing,
    /// S3 request + storage pricing.
    pub s3: S3Pricing,
    /// VM pricing for the EMR baseline.
    pub vm: VmPricing,
}

impl PriceCatalog {
    /// The 2020 AWS price sheet used throughout the paper.
    pub fn aws_2020() -> Self {
        PriceCatalog {
            lambda: LambdaPricing::aws_2020(),
            s3: S3Pricing::aws_2020(),
            vm: M3_XLARGE,
        }
    }
}

impl PriceCatalog {
    /// Google Cloud (Functions + GCS) 2020 prices — the Discussion's
    /// "adapted to Google Functions … by using their respective platform
    /// quotas and pricing mechanisms".
    pub fn gcp_2020() -> Self {
        PriceCatalog {
            lambda: LambdaPricing::gcp_2020(),
            s3: S3Pricing::gcs_2020(),
            vm: M3_XLARGE,
        }
    }

    /// Microsoft Azure (Functions + Blob) 2020 prices.
    pub fn azure_2020() -> Self {
        PriceCatalog {
            lambda: LambdaPricing::azure_2020(),
            s3: S3Pricing::azure_blob_2020(),
            vm: M3_XLARGE,
        }
    }
}

impl Default for PriceCatalog {
    fn default() -> Self {
        Self::aws_2020()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_aws_2020() {
        assert_eq!(PriceCatalog::default(), PriceCatalog::aws_2020());
    }
}
