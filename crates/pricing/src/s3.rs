//! Amazon S3 pricing (standard tier, 2020 price sheet as quoted in the paper).

use serde::{Deserialize, Serialize};

use crate::money::Money;

/// S3 request and storage pricing.
///
/// The paper (Eq. 10) quotes $0.005 per 1 000 PUT requests and $0.004 per
/// 10 000 GET requests. Storage is the standard-tier $0.023 per GB-month;
/// the paper's storage terms (Eq. 11) charge size × duration × unit price,
/// so we expose the per-MB-second rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct S3Pricing {
    /// Charge per PUT/COPY/POST/LIST request (`F` in the paper).
    pub per_put: Money,
    /// Charge per GET/SELECT request (`G` in the paper).
    pub per_get: Money,
    /// Storage sticker price per GB-month (`H` in the paper derives from
    /// this).
    pub gb_month_dollars: f64,
}

/// Seconds in the 30-day month AWS uses for storage billing.
pub const SECONDS_PER_MONTH: f64 = 30.0 * 24.0 * 3600.0;

impl S3Pricing {
    /// The 2020 standard-tier price sheet used by the paper.
    pub fn aws_2020() -> Self {
        // $0.023 per GB-month -> per MB-second:
        // 0.023 / 1024 / (30*24*3600) dollars = 8.665 nano-dollars per
        // MB-month ... in nano-dollars per MB-second:
        // 0.023e9 / 1024 / 2_592_000 ≈ 0.008666 nano$, below integer
        // resolution per second; we therefore store a per-(MB * 1000s)
        // figure via scale() at charge time instead. Keep the exact
        // per-MB-second value in femto-dollars? Simpler: store nano-dollars
        // per MB-second as computed at charge time from the sticker price.
        S3Pricing {
            per_put: Money::from_nanos(5_000),
            per_get: Money::from_nanos(400),
            gb_month_dollars: 0.023,
        }
    }

    /// Google Cloud Storage (standard, 2020): class-A ops (writes)
    /// $0.05/10k, class-B ops (reads) $0.004/10k, storage $0.020/GB-month.
    pub fn gcs_2020() -> Self {
        S3Pricing {
            per_put: Money::from_nanos(5_000),
            per_get: Money::from_nanos(400),
            gb_month_dollars: 0.020,
        }
    }

    /// Azure Blob Storage (hot, 2020): writes $0.055/10k, reads
    /// $0.0044/10k, storage $0.0184/GB-month.
    pub fn azure_blob_2020() -> Self {
        S3Pricing {
            per_put: Money::from_nanos(5_500),
            per_get: Money::from_nanos(440),
            gb_month_dollars: 0.0184,
        }
    }

    /// Cost of `n` PUT requests.
    pub fn put_cost(&self, n: u64) -> Money {
        self.per_put * n
    }

    /// Cost of `n` GET requests.
    pub fn get_cost(&self, n: u64) -> Money {
        self.per_get * n
    }

    /// Cost of storing `size_mb` megabytes for `duration_us` microseconds.
    ///
    /// Computed from the exact sticker price rather than the rounded
    /// per-MB-second field so that long-lived multi-GB objects are billed
    /// accurately.
    pub fn storage_cost(&self, size_mb: f64, duration_us: u64) -> Money {
        let gb_months =
            (size_mb / 1024.0) * (duration_us as f64 / 1e6) / SECONDS_PER_MONTH;
        Money::from_dollars_f64(self.gb_month_dollars).scale(gb_months)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_prices_match_paper() {
        let p = S3Pricing::aws_2020();
        // 1000 PUTs = $0.005
        assert_eq!(p.put_cost(1_000), Money::from_dollars_f64(0.005));
        // 10000 GETs = $0.004
        assert_eq!(p.get_cost(10_000), Money::from_dollars_f64(0.004));
    }

    #[test]
    fn storing_one_gb_for_a_month_costs_sticker_price() {
        let p = S3Pricing::aws_2020();
        let us_per_month = (SECONDS_PER_MONTH * 1e6) as u64;
        let cost = p.storage_cost(1024.0, us_per_month);
        let expected = Money::from_dollars_f64(0.023);
        let err = (cost - expected).nanos().abs();
        assert!(err < 10, "cost {cost} expected {expected}");
    }

    #[test]
    fn storage_cost_is_monotone_in_duration() {
        let p = S3Pricing::aws_2020();
        let short = p.storage_cost(100.0, 1_000_000);
        let long = p.storage_cost(100.0, 100_000_000);
        assert!(long > short);
    }

    #[test]
    fn zero_requests_cost_nothing() {
        let p = S3Pricing::aws_2020();
        assert_eq!(p.put_cost(0), Money::ZERO);
        assert_eq!(p.get_cost(0), Money::ZERO);
        assert_eq!(p.storage_cost(0.0, 1_000_000), Money::ZERO);
    }
}
