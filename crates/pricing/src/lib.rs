#![warn(missing_docs)]

//! Price catalogs and money arithmetic for the Astra reproduction.
//!
//! The paper (Sec. III-B) bills a serverless MapReduce job along four axes:
//! S3 request cost, S3 storage cost, Lambda invocation cost and Lambda
//! runtime cost. This crate provides the exact constants the paper quotes
//! and an integer [`Money`] type (nano-dollars) so that cost accounting in
//! the simulator is exact and associative — summing millions of per-request
//! charges in `f64` would drift.
//!
//! All catalogs are plain data: the analytical model (`astra-model`), the
//! event simulator (`astra-faas`) and the EMR baseline all consume the same
//! [`PriceCatalog`], which is what makes the cost comparisons in Fig. 7–9
//! internally consistent.

pub mod catalog;
pub mod lambda;
pub mod money;
pub mod s3;
pub mod vm;

pub use catalog::PriceCatalog;
pub use lambda::LambdaPricing;
pub use money::Money;
pub use s3::S3Pricing;
pub use vm::{VmPricing, M3_XLARGE};
