//! AWS Lambda pricing as of the paper's evaluation (2020 price sheet).

use serde::{Deserialize, Serialize};

use crate::money::Money;

/// Lambda pricing: invocation charge plus a GB-second runtime charge with a
/// billing-duration rounding granularity.
///
/// The paper quotes "$0.20 per 1 million requests" for invocations (Sec.
/// III-B3). The runtime charge in the 2020 price sheet was
/// $0.0000166667 per GB-second, billed in 100 ms increments (AWS moved to
/// 1 ms rounding in Dec 2020; the paper's experiments predate that, so the
/// default here is 100 ms and it is configurable).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LambdaPricing {
    /// Charge per single invocation.
    pub per_invocation: Money,
    /// Charge per GB-second of billed duration.
    pub per_gb_second: Money,
    /// Billing rounds duration *up* to a multiple of this many microseconds.
    pub billing_granularity_us: u64,
}

impl LambdaPricing {
    /// The 2020 AWS price sheet used by the paper.
    pub fn aws_2020() -> Self {
        LambdaPricing {
            // $0.20 per 1e6 requests = 200 nano-dollars per request.
            per_invocation: Money::from_nanos(200),
            // $0.0000166667 per GB-s = 16 666.7 nano-dollars; store the
            // common exact figure of $16.6667e-6.
            per_gb_second: Money::from_nanos(16_667),
            billing_granularity_us: 100_000,
        }
    }

    /// Google Cloud Functions (gen-1, 2020): $0.40 per million
    /// invocations; compute billed as memory (GB-s) plus CPU (GHz-s)
    /// where CPU is coupled to the memory tier — folded here into an
    /// effective $16.5e-6 per GB-s. Billed in 100 ms increments.
    pub fn gcp_2020() -> Self {
        LambdaPricing {
            per_invocation: Money::from_nanos(400),
            per_gb_second: Money::from_nanos(16_500),
            billing_granularity_us: 100_000,
        }
    }

    /// Azure Functions consumption plan (2020): $0.20 per million
    /// executions, $16e-6 per GB-s, billed per 1 ms with a 100 ms
    /// minimum (approximated here as 1 ms rounding).
    pub fn azure_2020() -> Self {
        LambdaPricing {
            per_invocation: Money::from_nanos(200),
            per_gb_second: Money::from_nanos(16_000),
            billing_granularity_us: 1_000,
        }
    }

    /// Round a raw duration up to the billing granularity.
    pub fn billed_duration_us(&self, duration_us: u64) -> u64 {
        if self.billing_granularity_us <= 1 {
            return duration_us;
        }
        duration_us.div_ceil(self.billing_granularity_us) * self.billing_granularity_us
    }

    /// Runtime charge for one invocation of a lambda with `memory_mb` of
    /// memory running for `duration_us` (pre-rounding) microseconds.
    pub fn runtime_cost(&self, memory_mb: u32, duration_us: u64) -> Money {
        let billed_us = self.billed_duration_us(duration_us);
        let gb_seconds = (memory_mb as f64 / 1024.0) * (billed_us as f64 / 1e6);
        self.per_gb_second.scale(gb_seconds)
    }

    /// Total charge (invocation + runtime) for one invocation.
    pub fn invocation_cost(&self, memory_mb: u32, duration_us: u64) -> Money {
        self.per_invocation + self.runtime_cost(memory_mb, duration_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn billed_duration_rounds_up_to_100ms() {
        let p = LambdaPricing::aws_2020();
        assert_eq!(p.billed_duration_us(1), 100_000);
        assert_eq!(p.billed_duration_us(100_000), 100_000);
        assert_eq!(p.billed_duration_us(100_001), 200_000);
        assert_eq!(p.billed_duration_us(0), 0);
    }

    #[test]
    fn one_second_of_one_gb_costs_the_listed_rate() {
        let p = LambdaPricing::aws_2020();
        let cost = p.runtime_cost(1024, 1_000_000);
        assert_eq!(cost, Money::from_nanos(16_667));
    }

    #[test]
    fn runtime_cost_scales_with_memory() {
        let p = LambdaPricing::aws_2020();
        let small = p.runtime_cost(128, 1_000_000);
        let big = p.runtime_cost(3008, 1_000_000);
        // 3008/128 = 23.5x
        let ratio = big.nanos() as f64 / small.nanos() as f64;
        assert!((ratio - 23.5).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn invocation_charge_is_200_nanos() {
        let p = LambdaPricing::aws_2020();
        assert_eq!(p.invocation_cost(128, 0), Money::from_nanos(200));
    }

    #[test]
    fn millisecond_granularity_bills_exactly() {
        let p = LambdaPricing {
            billing_granularity_us: 1,
            ..LambdaPricing::aws_2020()
        };
        assert_eq!(p.billed_duration_us(123_456), 123_456);
    }
}
