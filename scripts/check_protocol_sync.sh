#!/usr/bin/env bash
# Keep PROTOCOL.md's error-code table and the service source in lockstep.
#
# Direction 1: every code listed in PROTOCOL.md's "## Error codes" table
#   must exist as a `pub const` in crates/service/src/net.rs.
# Direction 2: every code constant defined in the `codes` module of
#   crates/service/src/net.rs must have a row in that table.
#
# Run from the repo root: ./scripts/check_protocol_sync.sh
set -euo pipefail

cd "$(dirname "$0")/.."

SPEC=PROTOCOL.md
SRC=crates/service/src/net.rs

[ -f "$SPEC" ] || { echo "missing $SPEC" >&2; exit 1; }
[ -f "$SRC" ] || { echo "missing $SRC" >&2; exit 1; }

# Codes documented in the spec: first backticked SHOUTY_SNAKE token of each
# table row between "## Error codes" and the next "## " heading.
spec_codes=$(awk '/^## Error codes/{f=1; next} /^## /{f=0} f' "$SPEC" \
    | grep -oE '^\| `[A-Z][A-Z0-9_]+`' | tr -d '|` ' | sort -u)

# Codes the server can actually emit: the `pub const NAME: &str = "NAME"`
# declarations inside the codes module.
src_codes=$(awk '/^pub mod codes/{f=1; next} f && /^}/{f=0} f' "$SRC" \
    | grep -oE 'pub const [A-Z][A-Z0-9_]+: &str' \
    | awk '{print $3}' | tr -d ':' | sort -u)

[ -n "$spec_codes" ] || { echo "no codes parsed from $SPEC" >&2; exit 1; }
[ -n "$src_codes" ] || { echo "no codes parsed from $SRC" >&2; exit 1; }

status=0
undocumented=$(comm -13 <(echo "$spec_codes") <(echo "$src_codes"))
if [ -n "$undocumented" ]; then
    echo "error codes in $SRC missing from $SPEC's table:" >&2
    echo "$undocumented" >&2
    status=1
fi
phantom=$(comm -23 <(echo "$spec_codes") <(echo "$src_codes"))
if [ -n "$phantom" ]; then
    echo "error codes documented in $SPEC but absent from $SRC:" >&2
    echo "$phantom" >&2
    status=1
fi

if [ "$status" -eq 0 ]; then
    n=$(echo "$spec_codes" | wc -l)
    echo "PROTOCOL.md and $SRC agree on $n error codes."
fi
exit "$status"
