//! Offline stand-in for the `rand` crate (0.10-style API).
//!
//! Implements exactly the surface this workspace uses: a seedable
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] extension methods `random::<T>()` and `random_range(..)`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! different stream than upstream `StdRng` (ChaCha12), which is fine
//! because every consumer in this workspace treats the stream as an
//! arbitrary deterministic sequence, never as a golden reference.

/// A source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from their "standard" distribution
/// (`[0, 1)` for floats, full range for integers).
pub trait Random: Sized {
    /// Draw one value from `rng`.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing extension methods (`rand` 0.10 naming).
pub trait RngExt: RngCore {
    /// Sample from the standard distribution of `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Sample uniformly from `range`. Panics on an empty range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::random_from(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3..10usize);
            assert!((3..10).contains(&v));
            let f = rng.random_range(-2.0..4.0);
            assert!((-2.0..4.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..2000).map(|_| rng.random::<f64>()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}
