//! Offline stand-in for `serde_json`.
//!
//! A self-contained JSON document model covering what the workspace
//! uses: [`Value`], [`Map`], the [`json!`] macro, [`to_string`] /
//! [`to_string_pretty`] and [`from_str`]. Objects are backed by a
//! `BTreeMap`, so key order is sorted and output is deterministic
//! (matching upstream serde_json without its `preserve_order` feature).

use std::collections::BTreeMap;
use std::fmt;

/// JSON object representation (sorted keys, like upstream's default).
pub type Map<K = String, V = Value> = BTreeMap<K, V>;

/// A JSON number: integer representations are kept exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A finite float.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(u) => write!(f, "{u}"),
            Number::NegInt(i) => write!(f, "{i}"),
            // Keep a decimal point on integral floats (serde_json style),
            // so the integer/float distinction survives a round trip.
            Number::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

impl Number {
    /// The number as f64.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(u) => u as f64,
            Number::NegInt(i) => i as f64,
            Number::Float(x) => x,
        }
    }
}

/// A JSON document.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Numeric value as f64, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Integer value, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(u)) => i64::try_from(*u).ok(),
            Value::Number(Number::NegInt(i)) => Some(*i),
            _ => None,
        }
    }

    /// Unsigned value, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(u)) => Some(*u),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array contents, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object contents, if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup that returns `Null` for misses (like indexing).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::PosInt(v as u64)) }
        }
    )*};
}
macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v as i64))
                }
            }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        if v.is_finite() {
            Value::Number(Number::Float(v))
        } else {
            Value::Null // upstream json! maps non-finite floats to null
        }
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::from(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

impl From<Map<String, Value>> for Value {
    fn from(m: Map<String, Value>) -> Value {
        Value::Object(m)
    }
}

macro_rules! eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Reference-friendly conversion used by the [`json!`] fallback arm, so
/// `json!({"xs": config.xs})` borrows instead of moving (matching
/// upstream, which serializes `&$value`).
pub trait ToJson {
    /// Convert a borrowed value into a [`Value`].
    fn to_json(&self) -> Value;
}

macro_rules! to_json_via_from {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value { Value::from(*self) }
        }
    )*};
}
to_json_via_from!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl ToJson for Map<String, Value> {
    fn to_json(&self) -> Value {
        Value::Object(self.clone())
    }
}

/// Build a [`Value`] from JSON-looking syntax: object/array literals
/// nest, keys are string literals, and other values are arbitrary
/// expressions converted by reference through [`ToJson`].
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

/// The `json!` token muncher. An implementation detail; use [`json!`].
///
/// Standard serde_json-style design: `@array` accumulates element
/// values, `@object` accumulates a key then dispatches on the value's
/// leading token so nested `{...}`/`[...]` literals recurse instead of
/// being parsed as Rust block expressions.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    //////////// array elements ////////////
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////// object entries ////////////
    // Done munching.
    (@object $map:ident () () ()) => {};
    // Insert entry (trailing comma present).
    (@object $map:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $map.insert(($($key)+).to_string(), $value);
        $crate::json_internal!(@object $map () ($($rest)*) ($($rest)*));
    };
    // Insert the final entry (no trailing comma).
    (@object $map:ident [$($key:tt)+] ($value:expr)) => {
        $map.insert(($($key)+).to_string(), $value);
    };
    // Value is `null`.
    (@object $map:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map [$($key)+] ($crate::Value::Null) $($rest)*);
    };
    // Value is an array literal.
    (@object $map:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    // Value is an object literal.
    (@object $map:ident ($($key:tt)+) (: {$($inner:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map [$($key)+] ($crate::json_internal!({$($inner)*})) $($rest)*);
    };
    // Value is an expression followed by more entries.
    (@object $map:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    // Value is the last expression.
    (@object $map:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $map [$($key)+] ($crate::json_internal!($value)));
    };
    // Accumulate the (string-literal) key.
    (@object $map:ident () (($key:tt) : $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map ($key) (: $($rest)*) (: $($rest)*));
    };
    (@object $map:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $map ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //////////// entry points ////////////
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut map = $crate::Map::new();
        $crate::json_internal!(@object map () ($($tt)+) ($($tt)+));
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (level + 1)));
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * level));
            }
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (level + 1)));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * level));
            }
            out.push('}');
        }
    }
}

/// Compact serialization.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    Ok(out)
}

/// Two-space-indented serialization (upstream's pretty style).
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    Ok(out)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        f.write_str(&out)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, Error> {
        Err(Error {
            msg: format!("{} at byte {}", msg.into(), self.pos),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos -= usize::from(self.pos > 0);
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(format!("expected '{lit}'"))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return self.err("truncated \\u escape");
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| Error {
                                msg: "bad \\u escape".into(),
                            })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| Error {
                            msg: "bad \\u escape".into(),
                        })?;
                        self.pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return self.err("bad escape"),
                },
                Some(b) => {
                    // Re-assemble UTF-8 from raw bytes.
                    let start = self.pos - 1;
                    let width = match b {
                        b if b < 0x80 => 1,
                        b if b >> 5 == 0b110 => 2,
                        b if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    self.pos = start + width;
                    if self.pos > self.bytes.len() {
                        return self.err("truncated UTF-8");
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error {
                            msg: "invalid UTF-8".into(),
                        })?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(Value::Number(Number::Float(x))),
            Err(_) => self.err(format!("bad number '{text}'")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parse a JSON document.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let v = json!({
            "name": "astra",
            "n": 202,
            "ratio": 0.5,
            "neg": -3,
            "ok": true,
            "none": null,
            "xs": [1, 2, 3],
            "nested": json!({"a": "b\nc"}),
        });
        for rendered in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&rendered).unwrap(), v);
        }
    }

    #[test]
    fn indexing_and_comparisons() {
        let v = json!({"answer": 42, "name": "x"});
        assert_eq!(v["answer"], 42);
        assert_eq!(v["name"], "x");
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn vectors_convert() {
        let rows = vec![json!(1), json!(2)];
        let v = json!(rows);
        assert_eq!(v, json!([1, 2]));
        let sizes: Vec<usize> = vec![4, 5];
        assert_eq!(json!(sizes), json!([4, 5]));
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({"a": [1]});
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
    }
}
