//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` derive names the workspace
//! imports. The derives are no-ops (see `serde_derive`); no code here
//! ever serializes through serde — JSON output goes through the
//! `serde_json` stand-in's `Value` type instead.

pub use serde_derive::{Deserialize, Serialize};
