//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is an immutable, reference-counted byte buffer: cloning is
//! an `Arc` bump, exactly the property the in-memory object store relies
//! on when fanning the same object out to many simulated workers.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply clonable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Wrap a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    /// Copy an arbitrary slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes(Arc::from(s.into_bytes()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        **self == **other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        **self == other[..]
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(Arc::strong_count(&a.0), 2);
    }

    #[test]
    fn comparisons_against_slices() {
        let a = Bytes::from_static(b"hello");
        assert_eq!(a, b"hello");
        assert_eq!(a.len(), 5);
        assert_eq!(&a[..2], b"he");
    }
}
