//! Offline stand-in for `rayon`.
//!
//! Implements the data-parallel surface this workspace uses with scoped
//! OS threads instead of a work-stealing pool. The design constraint is
//! **determinism**: every adapter preserves input order, and every
//! reduction combines per-chunk partial results in chunk order, so a
//! pipeline's output is bit-identical for any thread count (only the
//! wall-clock changes). That property is what lets the planner promise
//! identical plans at `RAYON_NUM_THREADS=1,2,8`.
//!
//! Thread-count resolution, in priority order:
//! 1. the programmatic override ([`ThreadPoolBuilder::build_global`] or
//!    [`set_global_threads`], e.g. from the CLI `--threads` flag),
//! 2. the `RAYON_NUM_THREADS` environment variable, re-read on every
//!    parallel call (unlike upstream rayon, which samples it once) so
//!    tests can vary it within one process,
//! 3. `std::thread::available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Set the global thread-count override (0 clears it).
pub fn set_global_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::SeqCst);
}

/// The number of threads parallel calls will use right now.
pub fn current_num_threads() -> usize {
    let n = GLOBAL_THREADS.load(Ordering::SeqCst);
    if n > 0 {
        return n;
    }
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Minimal `rayon::ThreadPoolBuilder` look-alike; only global
/// configuration is supported.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `n` threads (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install the configuration globally. Unlike upstream rayon this
    /// may be called repeatedly; the last call wins.
    pub fn build_global(self) -> Result<(), std::convert::Infallible> {
        set_global_threads(self.num_threads);
        Ok(())
    }
}

/// Worker count for a parallel pass over `len` items with a minimum
/// chunk size of `min_len`: enough threads that every chunk holds at
/// least `min_len` items, never more than [`current_num_threads`].
/// Spawning a thread for a handful of cheap items costs more than the
/// items themselves; the `with_min_len` hint is how callers say so.
fn effective_threads(len: usize, min_len: usize) -> usize {
    current_num_threads()
        .min(len.div_ceil(min_len.max(1)))
        .min(len.max(1))
}

/// Run `f` over `items` on up to [`effective_threads`] scoped threads,
/// returning outputs in input order.
fn run_map<T, U, F>(items: Vec<T>, min_len: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let len = items.len();
    let threads = effective_threads(len, min_len);
    if threads <= 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = len.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut rest = items;
    while !rest.is_empty() {
        let take = chunk_size.min(rest.len());
        let tail = rest.split_off(take);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::with_capacity(len);
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
        out
    })
}

/// The single parallel-iterator type. Adapters evaluate eagerly (each
/// `map`/`filter` is one parallel pass), which keeps results ordered and
/// the implementation obviously correct.
pub struct ParIter<T> {
    items: Vec<T>,
    /// Minimum items per worker chunk (the `with_min_len` hint);
    /// propagated through adapters like rayon's producer splitting.
    min_len: usize,
}

impl<T: Send> ParIter<T> {
    /// Pair each item with its index (order-preserving).
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
            min_len: self.min_len,
        }
    }

    /// Parallel map; output order equals input order.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: run_map(self.items, self.min_len, f),
            min_len: self.min_len,
        }
    }

    /// Parallel filter-map; surviving items keep their relative order.
    pub fn filter_map<U: Send, F: Fn(T) -> Option<U> + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: run_map(self.items, self.min_len, f)
                .into_iter()
                .flatten()
                .collect(),
            min_len: self.min_len,
        }
    }

    /// Parallel filter.
    pub fn filter<F: Fn(&T) -> bool + Sync>(self, f: F) -> ParIter<T> {
        ParIter {
            items: run_map(self.items, self.min_len, |t| if f(&t) { Some(t) } else { None })
                .into_iter()
                .flatten()
                .collect(),
            min_len: self.min_len,
        }
    }

    /// Parallel flat-map; each item's expansion stays contiguous and in
    /// input order.
    pub fn flat_map<U: Send, I, F>(self, f: F) -> ParIter<U>
    where
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync,
    {
        ParIter {
            items: run_map(self.items, self.min_len, |t| {
                f(t).into_iter().collect::<Vec<U>>()
            })
            .into_iter()
            .flatten()
            .collect(),
            min_len: self.min_len,
        }
    }

    /// Parallel for-each.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_map(self.items, self.min_len, &f);
    }

    /// Rayon-style reduction: per-chunk folds combined in chunk order.
    /// Deterministic for associative `op` regardless of thread count.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        let len = self.items.len();
        let threads = effective_threads(len, self.min_len);
        if threads <= 1 || len <= 1 {
            return self.items.into_iter().fold(identity(), &op);
        }
        let chunk_size = len.div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::new();
        let mut rest = self.items;
        while !rest.is_empty() {
            let take = chunk_size.min(rest.len());
            let tail = rest.split_off(take);
            chunks.push(std::mem::replace(&mut rest, tail));
        }
        let (identity, op) = (&identity, &op);
        let partials: Vec<T> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().fold(identity(), op)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });
        partials.into_iter().fold(identity(), op)
    }

    /// Minimum by comparator (first minimum wins, as in sequential code).
    pub fn min_by<F: Fn(&T, &T) -> std::cmp::Ordering + Sync>(self, cmp: F) -> Option<T> {
        self.items.into_iter().min_by(|a, b| {
            // `Iterator::min_by` keeps the *last* minimum; invert equal
            // ordering so the first one wins like rayon's documented
            // "first" semantics for stable reductions.
            match cmp(a, b) {
                std::cmp::Ordering::Equal => std::cmp::Ordering::Less,
                o => o,
            }
        })
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Collect into any `FromIterator` container, preserving order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Require at least `len` items per worker chunk. Caps the effective
    /// worker count at `ceil(items / len)`, so short inputs of cheap
    /// items stop paying a thread spawn per handful of elements. `0` is
    /// treated as `1` (rayon's semantics: no constraint).
    pub fn with_min_len(self, len: usize) -> Self {
        ParIter {
            items: self.items,
            min_len: len.max(1),
        }
    }
}

impl<T: Send + std::iter::Sum<T>> ParIter<T> {
    /// Sum all items (sequential combine, deterministic order).
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Create the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self,
            min_len: 1,
        }
    }
}

impl<T: Send> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.collect(),
            min_len: 1,
        }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Create the parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
            min_len: 1,
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
            min_len: 1,
        }
    }
}

/// The glob-importable prelude, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order_across_thread_counts() {
        let input: Vec<u64> = (0..10_000).collect();
        let expect: Vec<u64> = input.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8] {
            set_global_threads(threads);
            let got: Vec<u64> = input.clone().into_par_iter().map(|x| x * 3 + 1).collect();
            assert_eq!(got, expect, "threads={threads}");
        }
        set_global_threads(0);
    }

    #[test]
    fn reduce_is_deterministic_for_associative_ops() {
        let input: Vec<u64> = (1..=1000).collect();
        for threads in [1, 2, 7] {
            set_global_threads(threads);
            let s = input.clone().into_par_iter().reduce(|| 0, |a, b| a + b);
            assert_eq!(s, 500_500, "threads={threads}");
        }
        set_global_threads(0);
    }

    #[test]
    fn for_each_visits_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        set_global_threads(4);
        (0..257usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|_| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        set_global_threads(0);
        assert_eq!(hits.load(Ordering::SeqCst), 257);
    }

    #[test]
    fn env_var_is_read_dynamically() {
        set_global_threads(0);
        std::env::set_var("RAYON_NUM_THREADS", "3");
        assert_eq!(current_num_threads(), 3);
        std::env::remove_var("RAYON_NUM_THREADS");
    }

    #[test]
    fn with_min_len_caps_worker_fanout() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        set_global_threads(8);
        let seen = Mutex::new(HashSet::new());
        (0..8usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .with_min_len(4)
            .for_each(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            });
        // ceil(8 / 4) = 2 chunks: at most two distinct workers.
        assert!(seen.lock().unwrap().len() <= 2);
        assert_eq!(effective_threads(8, 4), 2);
        assert_eq!(effective_threads(8, 1), 8);
        assert_eq!(effective_threads(3, 100), 1);
        assert_eq!(effective_threads(0, 0), 0);
        set_global_threads(0);
    }

    #[test]
    fn min_len_survives_adapter_chains() {
        set_global_threads(8);
        let out: Vec<usize> = (0..10usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .with_min_len(5)
            .enumerate()
            .map(|(i, x)| i + x)
            .filter(|&v| v % 2 == 0)
            .collect();
        set_global_threads(0);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14, 16, 18]);
    }

    #[test]
    fn min_by_keeps_first_minimum() {
        set_global_threads(2);
        let items = vec![(3, 'a'), (1, 'b'), (1, 'c'), (2, 'd')];
        let got = items.into_par_iter().min_by(|a, b| a.0.cmp(&b.0)).unwrap();
        set_global_threads(0);
        assert_eq!(got, (1, 'b'));
    }
}
