//! Offline stand-in for `proptest`.
//!
//! Provides the strategy combinators and macros this workspace uses:
//! numeric-range strategies, tuples, `prop_map`, `Just`,
//! `collection::vec`, `bool::ANY`, `ProptestConfig::with_cases`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream, deliberately accepted:
//! - no shrinking: a failing case reports its seed and case number
//!   instead of a minimized input;
//! - deterministic seeding derived from the test's module path and case
//!   index, so failures reproduce exactly across runs and machines.

use rand::rngs::StdRng;

/// Strategy combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Generates values of `Value` from a seeded RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone, Copy)]
    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    impl Strategy for core::ops::Range<i128> {
        type Value = i128;
        fn generate(&self, rng: &mut StdRng) -> i128 {
            assert!(self.start < self.end, "cannot sample empty range");
            let span = (self.end - self.start) as u128;
            let wide = ((rng.random::<u64>() as u128) << 64) | rng.random::<u64>() as u128;
            self.start + (wide % span) as i128
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Strategy for `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: core::ops::Range<usize>,
    }

    /// A vector whose length is drawn from `size` and whose elements
    /// come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Uniform `true` / `false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.random::<bool>()
        }
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Stable 64-bit seed from a test identifier (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Per-case RNG (exposed for the macro expansion).
pub fn rng_for_case(base: u64, case: u32) -> StdRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Define property tests: each `fn name(arg in strategy, ...)` body runs
/// for `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::rng_for_case(__base, __case);
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )*
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| { $body }));
                    if let Err(panic) = __result {
                        eprintln!(
                            "proptest: property '{}' failed at case {}/{} (base seed {:#018x})",
                            stringify!($name), __case + 1, __cfg.cases, __base,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Property-test assertion (plain `assert!` without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// (Upstream re-draws the case; here the case is simply not counted.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, f64)> + Clone {
        (1usize..10, 0.0f64..1.0).prop_map(|(n, x)| (n * 2, x))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..9, x in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn vec_strategy_sizes(xs in crate::collection::vec(0u64..5, 1..20)) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn mapped_tuples_compose(p in arb_pair()) {
            prop_assert_eq!(p.0 % 2, 0);
        }

        #[test]
        fn bools_generate(b in crate::bool::ANY) {
            prop_assert!(matches!(b, true | false));
        }

        #[test]
        fn i128_ranges(v in -1_000_000_000i128..1_000_000_000) {
            prop_assert!((-1_000_000_000..1_000_000_000).contains(&v));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        use crate::strategy::Strategy;
        let s = (0u64..1000, 0.0f64..1.0);
        let a: Vec<_> = (0..10)
            .map(|c| s.generate(&mut crate::rng_for_case(42, c)))
            .collect();
        let b: Vec<_> = (0..10)
            .map(|c| s.generate(&mut crate::rng_for_case(42, c)))
            .collect();
        assert_eq!(a, b);
    }
}
