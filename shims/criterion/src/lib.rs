//! Offline stand-in for `criterion`.
//!
//! Keeps the bench sources compiling and runnable (`cargo bench`)
//! without the statistics machinery: each benchmark runs a short warmup
//! and `sample_size` timed iterations, then prints mean and minimum
//! wall-clock time per iteration.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Default sample count for benches in this driver.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl std::fmt::Display, f: F) {
        run_bench(&name.to_string(), self.sample_size, f);
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed iterations per bench in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Close the group (upstream flushes reports here; a no-op).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; calls [`Bencher::iter`] get timed.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `sample_size` calls of `routine` (after one warmup call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: sample_size.max(1),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {name}: no samples");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!(
        "bench {name}: mean {:.3} ms, min {:.3} ms ({} samples)",
        mean.as_secs_f64() * 1e3,
        min.as_secs_f64() * 1e3,
        b.samples.len()
    );
}

/// Group benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit a `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut runs = 0;
        c.bench_function("t", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert_eq!(runs, 4); // 1 warmup + 3 samples
    }

    #[test]
    fn groups_run_too() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut runs = 0;
        g.bench_function("x", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 3);
    }
}
