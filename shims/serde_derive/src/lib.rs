//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, and nothing in this
//! workspace ever calls a `Serialize`/`Deserialize` implementation — the
//! derives exist so the types are ready for a real serde swap-in. These
//! derive macros therefore accept the attribute syntax and expand to
//! nothing at all.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` field/container
/// attributes) and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` field/container
/// attributes) and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
