//! Wire-format guarantees: JSON round-trips are lossless (budgets to
//! the nanodollar), unknown fields are rejected at every nesting level,
//! and malformed or invalid bodies submitted through the daemon land in
//! `Rejected` with the wire error as the reason.

mod service_support;

use astra::core::Objective;
use astra::pricing::Money;
use astra::service::wire;
use astra::service::{JobStatus, ServiceConfig, ServiceDaemon, SimOptions, WireError};
use serde_json::Value;
use service_support::mixed_requests;

#[test]
fn every_mixed_request_round_trips_losslessly() {
    for (i, request) in mixed_requests(10).into_iter().enumerate() {
        let text = serde_json::to_string_pretty(&wire::job_request_to_json(&request)).unwrap();
        let back = wire::job_request_from_str(&text).unwrap_or_else(|e| {
            panic!("request {i} failed to re-parse: {e}\n{text}")
        });
        assert_eq!(back, request, "request {i} round-trip drifted");
    }
}

#[test]
fn budgets_round_trip_to_the_nanodollar() {
    // Objective::fastest() carries a budget near the i128 ceiling that
    // no f64 can represent; the string encoding must preserve it.
    let mut request = mixed_requests(1).remove(0);
    request.objective = Objective::fastest();
    let text = serde_json::to_string(&wire::job_request_to_json(&request)).unwrap();
    assert_eq!(wire::job_request_from_str(&text).unwrap().objective, request.objective);

    request.objective = Objective::MinimizeTime {
        budget: Money::from_nanos(123_456_789_000_000_007),
    };
    let text = serde_json::to_string(&wire::job_request_to_json(&request)).unwrap();
    assert_eq!(wire::job_request_from_str(&text).unwrap().objective, request.objective);
}

#[test]
fn status_names_round_trip() {
    for status in JobStatus::ALL {
        assert_eq!(JobStatus::parse(status.as_str()), Some(status));
        assert_eq!(status.to_string(), status.as_str());
    }
    assert_eq!(JobStatus::parse("PENDING"), None);
}

#[test]
fn unknown_fields_fail_parsing_and_reject_through_the_daemon() {
    let request = mixed_requests(1).remove(0);
    let mut value = wire::job_request_to_json(&request);
    let Value::Object(map) = &mut value else { panic!() };
    map.insert("priority".to_string(), Value::from(9));
    let body = serde_json::to_string(&value).unwrap();

    // Direct parse: a typed unknown-field error naming the key.
    match wire::job_request_from_str(&body) {
        Err(WireError::UnknownField { context, field }) => {
            assert_eq!(context, "request");
            assert_eq!(field, "priority");
        }
        other => panic!("expected UnknownField, got {other:?}"),
    }

    // Through the daemon: a Rejected snapshot carrying that reason.
    let daemon = ServiceDaemon::start(ServiceConfig::default());
    let handle = daemon.handle();
    let id = handle.submit_json(&body);
    let snap = handle.await_done(id).unwrap();
    assert_eq!(snap.status, JobStatus::Rejected);
    snap.check_history().unwrap();
    assert!(
        snap.reason.as_ref().unwrap().contains("unknown field 'priority'"),
        "reason: {:?}",
        snap.reason
    );
}

#[test]
fn invalid_specs_parse_but_reject_with_validation_reasons() {
    // Structurally valid JSON, semantically invalid spec: parsing
    // succeeds, validation rejects, and the reason is the validator's.
    let mut request = mixed_requests(1).remove(0);
    request.job.object_sizes_mb[0] = -5.0;
    let body = serde_json::to_string(&wire::job_request_to_json(&request)).unwrap();

    let daemon = ServiceDaemon::start(ServiceConfig::default());
    let handle = daemon.handle();
    let id = handle.submit_json(&body);
    let snap = handle.await_done(id).unwrap();
    assert_eq!(snap.status, JobStatus::Rejected);
    assert!(
        snap.reason.as_ref().unwrap().contains("invalid size"),
        "reason: {:?}",
        snap.reason
    );

    // The placeholder path: an unparsable body still gets an id and a
    // Rejected snapshot, and valid JSON submissions round-trip through
    // a snapshot encoding that names the same status.
    let id = handle.submit_json("[1, 2, 3]");
    let snap = handle.await_done(id).unwrap();
    assert_eq!(snap.status, JobStatus::Rejected);
    let encoded = wire::snapshot_to_json(&snap);
    let Value::Object(map) = &encoded else { panic!() };
    assert_eq!(map.get("status").unwrap().as_str().unwrap(), "REJECTED");
    assert!(map.get("reason").unwrap().as_str().is_some());
}

#[test]
fn done_snapshots_encode_results_exactly() {
    let request = mixed_requests(2).remove(1).with_sim(SimOptions {
        noise_cv: 0.1,
        seed: 7,
        replications: 2,
    });
    let daemon = ServiceDaemon::start(ServiceConfig::default());
    let handle = daemon.handle();
    let id = handle.submit(request);
    let snap = handle.await_done(id).unwrap();
    assert_eq!(snap.status, JobStatus::Done);

    let encoded = wire::snapshot_to_json(&snap);
    let Value::Object(map) = &encoded else { panic!() };
    assert_eq!(map.get("id").unwrap().as_u64().unwrap(), snap.id);
    assert_eq!(map.get("status").unwrap().as_str().unwrap(), "DONE");
    let Some(Value::Object(plan)) = map.get("plan") else {
        panic!("Done snapshot must encode its plan")
    };
    // Predicted cost encodes as the exact nanodollar string.
    assert_eq!(
        plan.get("predicted_cost_nanos").unwrap().as_str().unwrap(),
        snap.plan.as_ref().unwrap().predicted_cost.nanos().to_string()
    );
    let Some(Value::Object(sim)) = map.get("sim") else {
        panic!("simulated snapshot must encode sim results")
    };
    assert_eq!(sim.get("jct_s").unwrap().as_array().unwrap().len(), 2);
    let history = map.get("history").unwrap().as_array().unwrap();
    assert_eq!(history.len(), snap.history.len());
    let Some(Value::Object(first)) = history.first() else { panic!() };
    assert_eq!(first.get("status").unwrap().as_str().unwrap(), "ACCEPTED");
}
