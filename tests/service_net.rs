//! The TCP line-protocol suite: loopback results must be bit-identical
//! to the in-process handle (and so to the serial library reference),
//! framing errors must reject without dropping the connection, the
//! connection budget must refuse explicitly, shutdown must drain, and
//! the DRR fairness layer must neither starve a lane nor over-admit a
//! tenant envelope. The transcript in `PROTOCOL.md` is replayed against
//! a live server to keep the spec byte-accurate.

mod service_support;

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use astra::core::Objective;
use astra::model::{JobSpec, WorkloadProfile};
use astra::pricing::Money;
use astra::service::fairness::{Dispatch, DrrLanes, QueuedJob};
use astra::service::net::{codes, PROTO_VERSION};
use astra::service::wire;
use astra::service::{
    AdmissionController, Envelope, FairnessConfig, JobId, JobRequest, JobStatus, NetClient,
    NetConfig, NetServer, ServiceConfig, ServiceDaemon, SimOptions, TenantEnvelope,
};
use astra::telemetry::{InMemoryRecorder, Telemetry};
use proptest::prelude::*;
use serde_json::Value;
use service_support::{assert_matches_reference, library_planner, mixed_requests, reference};

fn dollars(d: f64) -> Money {
    Money::from_dollars_f64(d)
}

/// A quiet daemon + TCP server on an ephemeral loopback port.
fn start_server(
    config: ServiceConfig,
    net: NetConfig,
    telemetry: Telemetry,
) -> (ServiceDaemon, NetServer, String) {
    let daemon = ServiceDaemon::start(config);
    let server =
        NetServer::start(daemon.handle(), "127.0.0.1:0", net, telemetry).expect("bind loopback");
    let addr = server.local_addr().to_string();
    (daemon, server, addr)
}

fn quiet_config() -> ServiceConfig {
    ServiceConfig::default().with_telemetry(Telemetry::disabled())
}

/// Zero every `*_ns` field (timestamps and durations are the only
/// nondeterministic bytes in a response line).
fn normalize_times(value: &mut Value) {
    match value {
        Value::Object(map) => {
            let keys: Vec<String> = map.keys().cloned().collect();
            for key in keys {
                if key.ends_with("_ns") {
                    map.insert(key, Value::from(0u64));
                } else {
                    normalize_times(map.get_mut(&key).unwrap());
                }
            }
        }
        Value::Array(items) => {
            for item in items.iter_mut() {
                normalize_times(item);
            }
        }
        _ => {}
    }
}

fn normalized_line(line: &str) -> String {
    let mut value: Value = serde_json::from_str(line.trim_end()).expect("response line is JSON");
    normalize_times(&mut value);
    serde_json::to_string(&value).unwrap()
}

// ------------------------------------------------------------- lifecycle

#[test]
fn loopback_jobs_match_the_in_process_handle_and_the_library() {
    let (daemon, server, addr) = start_server(
        quiet_config(),
        NetConfig::default(),
        Telemetry::disabled(),
    );
    let handle = daemon.handle();
    let mut client = NetClient::connect(&addr).unwrap();
    assert_eq!(
        client.hello().as_object().and_then(|o| o.get("proto")),
        Some(&Value::from(PROTO_VERSION)),
        "hello must announce the protocol version"
    );

    for request in &mixed_requests(12) {
        let lib = reference(request);
        let id = client.submit_id(request).unwrap();
        let response = client.await_done(id).unwrap();
        let over_tcp = response
            .as_object()
            .and_then(|o| o.get("job"))
            .cloned()
            .expect("await responses carry the snapshot");
        // The transport adds nothing: the TCP job object is exactly the
        // wire encoding of the in-process snapshot, and that snapshot is
        // bit-identical to the serial library run.
        let snap = handle.status(id).expect("tcp-issued id is pollable in-process");
        assert_eq!(over_tcp, wire::snapshot_to_json(&snap), "tcp vs in-process encoding");
        snap.check_history().unwrap();
        assert_matches_reference(&snap, &lib, "over tcp");
    }

    server.shutdown();
    daemon.shutdown();
}

#[test]
fn shutdown_drains_every_job_accepted_over_tcp() {
    let (daemon, server, addr) = start_server(
        quiet_config().with_workers(1),
        NetConfig::default(),
        Telemetry::disabled(),
    );
    let mut client = NetClient::connect(&addr).unwrap();
    let ids: Vec<JobId> = mixed_requests(6)
        .iter()
        .map(|r| client.submit_id(r).unwrap())
        .collect();
    // The graceful ordering: stop the transport first, then drain the
    // daemon — nothing accepted is abandoned.
    server.shutdown();
    let snapshots = daemon.shutdown();
    for id in ids {
        let snap = snapshots.iter().find(|s| s.id == id).unwrap();
        assert_eq!(snap.status, JobStatus::Done, "job {id} was not drained");
    }
}

// --------------------------------------------------------------- framing

#[test]
fn framing_errors_reject_without_dropping_the_connection() {
    let (daemon, server, addr) = start_server(
        quiet_config(),
        NetConfig::default().with_max_line_bytes(512),
        Telemetry::disabled(),
    );
    let mut client = NetClient::connect(&addr).unwrap();

    let oversize = "x".repeat(600);
    let cases: Vec<(&str, &str)> = vec![
        (oversize.as_str(), codes::OVERSIZE_LINE),
        ("{not json", codes::INVALID_JSON),
        (r#"{"op":"ping"} trailing"#, codes::TRAILING_GARBAGE),
        ("[1,2,3]", codes::BAD_ENVELOPE),
        (r#"{"request":{}}"#, codes::BAD_ENVELOPE),
        (r#"{"op":7}"#, codes::BAD_ENVELOPE),
        (r#"{"op":"frobnicate"}"#, codes::UNKNOWN_OP),
        (r#"{"op":"ping","extra":1}"#, codes::BAD_ENVELOPE),
        (r#"{"op":"submit","request":{}}"#, codes::BAD_REQUEST),
        (r#"{"op":"status"}"#, codes::BAD_ENVELOPE),
    ];
    let mut rejected_ids = Vec::new();
    for (line, code) in cases {
        let response: Value = serde_json::from_str(&client.send_raw(line).unwrap()).unwrap();
        let obj = response.as_object().unwrap();
        assert_eq!(obj.get("ok"), Some(&Value::from(false)), "line {line:?}");
        let got = obj["error"]["code"].as_str().unwrap();
        assert_eq!(got, code, "line {line:?}");
        // Every framing failure registers a real Rejected job whose
        // snapshot rides the error line and whose reason names the code.
        let job = obj.get("job").and_then(|j| j.as_object()).unwrap_or_else(|| {
            panic!("no job snapshot on {code} response")
        });
        assert_eq!(job.get("status"), Some(&Value::from("REJECTED")), "{code}");
        let reason = job["reason"].as_str().unwrap();
        assert!(reason.starts_with(code), "reason {reason:?} does not lead with {code}");
        rejected_ids.push(job["id"].as_u64().unwrap());
    }

    // UNKNOWN_JOB is a pure lookup miss: no placeholder job registered.
    let miss = client.status(99_999).unwrap();
    let obj = miss.as_object().unwrap();
    assert_eq!(obj["error"]["code"].as_str().unwrap(), codes::UNKNOWN_JOB);
    assert!(obj.get("job").is_none(), "lookup misses must not register jobs");

    // Blank lines are keep-alive no-ops: two lines in one write, the
    // blank one produces no response.
    let pong: Value =
        serde_json::from_str(&client.send_raw("\n{\"op\":\"ping\"}").unwrap()).unwrap();
    assert_eq!(pong["op"].as_str(), Some("ping"));

    // The connection survived all of the above, and every placeholder
    // is pollable like any other job.
    for id in rejected_ids {
        let polled = client.status(id).unwrap();
        assert_eq!(polled["job"]["status"].as_str(), Some("REJECTED"));
    }

    // Invalid UTF-8 needs a raw socket (NetClient only sends strings).
    let mut raw = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap(); // hello
    raw.write_all(b"{\"op\":\"ping\xFF\"}\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    let response: Value = serde_json::from_str(line.trim_end()).unwrap();
    assert_eq!(
        response["error"]["code"].as_str().unwrap(),
        codes::INVALID_UTF8
    );
    // And the raw connection is still usable afterwards.
    raw.write_all(b"{\"op\":\"ping\"}\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    let pong: Value = serde_json::from_str(line.trim_end()).unwrap();
    assert_eq!(pong["ok"], Value::from(true));

    server.shutdown();
    daemon.shutdown();
}

#[test]
fn connection_budget_refuses_explicitly_and_recovers() {
    let (daemon, server, addr) = start_server(
        quiet_config(),
        NetConfig::default().with_max_connections(1),
        Telemetry::disabled(),
    );
    let mut first = NetClient::connect(&addr).unwrap();
    first.ping().unwrap();

    // The second connection gets exactly one refusal line, then EOF.
    {
        let raw = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(raw);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let refusal: Value = serde_json::from_str(line.trim_end()).unwrap();
        assert_eq!(refusal["ok"], Value::from(false));
        assert_eq!(
            refusal["error"]["code"].as_str().unwrap(),
            codes::CONNECTION_LIMIT
        );
        line.clear();
        assert_eq!(
            reader.read_line(&mut line).unwrap(),
            0,
            "a refused connection must be closed"
        );
    }

    // Freeing the slot makes the budget available again (the reader
    // thread notices EOF asynchronously, so poll briefly).
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(mut again) = NetClient::connect(&addr) {
            let is_hello = again
                .hello()
                .as_object()
                .is_some_and(|o| o.get("op") == Some(&Value::from("hello")));
            if is_hello && again.ping().is_ok() {
                break;
            }
        }
        assert!(Instant::now() < deadline, "connection slot never freed");
        std::thread::sleep(Duration::from_millis(10));
    }

    server.shutdown();
    daemon.shutdown();
}

// ---------------------------------------------------------- determinism

/// The thread counts swept (the rayon shim re-reads the env var on each
/// parallel call, so sweeping inside one process is sound).
const THREADS: [&str; 3] = ["1", "2", "8"];

#[test]
fn concurrent_connections_stay_deterministic_across_thread_counts() {
    let requests = mixed_requests(12);
    let references: Vec<_> = requests.iter().map(reference).collect();
    const CONNECTIONS: usize = 3;

    for threads in THREADS {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let (daemon, server, addr) = start_server(
            quiet_config().with_workers(2),
            NetConfig::default(),
            Telemetry::disabled(),
        );
        let handle = daemon.handle();

        // Each connection submits its share concurrently and awaits its
        // own jobs; interleaving changes latency, never a result bit.
        let mut joins = Vec::new();
        for lane in 0..CONNECTIONS {
            let addr = addr.clone();
            let mine: Vec<(usize, JobRequest)> = requests
                .iter()
                .cloned()
                .enumerate()
                .filter(|(i, _)| i % CONNECTIONS == lane)
                .collect();
            joins.push(std::thread::spawn(move || {
                let mut client = NetClient::connect(&addr).unwrap();
                let ids: Vec<(usize, JobId)> = mine
                    .iter()
                    .map(|(i, request)| (*i, client.submit_id(request).unwrap()))
                    .collect();
                for &(_, id) in &ids {
                    let response = client.await_done(id).unwrap();
                    assert_eq!(response["ok"], Value::from(true));
                }
                ids
            }));
        }
        for join in joins {
            for (request_index, id) in join.join().unwrap() {
                let snap = handle.status(id).expect("id issued over tcp");
                assert_matches_reference(
                    &snap,
                    &references[request_index],
                    &format!("{CONNECTIONS} connections @{threads} threads"),
                );
            }
        }
        server.shutdown();
        daemon.shutdown();
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

// ------------------------------------------------------------- fairness

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Driving random claim mixes across three tenants through the DRR
    /// lanes with a FIFO release discipline: tenant occupancy never
    /// exceeds the tenant envelope at any step, the dispatch loop always
    /// converges (no lane is starved), every job dispatches exactly
    /// once, and order within a lane stays FIFO.
    #[test]
    fn drr_never_starves_a_lane_and_never_over_admits_a_tenant(
        jobs in proptest::collection::vec((0usize..3, 0.001f64..0.04), 1..40),
        tenant_slots in 1usize..4,
        global_slots in 1usize..6,
    ) {
        let tenants = ["t0", "t1", "t2"];
        let envelope = TenantEnvelope {
            max_in_flight: tenant_slots,
            budget: dollars(0.05),
        };
        let mut drr = DrrLanes::new(
            FairnessConfig::default().with_default_envelope(envelope),
            Telemetry::disabled(),
        );
        let mut global = AdmissionController::new(Envelope {
            max_in_flight: global_slots,
            budget: dollars(100.0),
        });
        for (id, (tenant, claim)) in jobs.iter().enumerate() {
            drr.enqueue(QueuedJob {
                id: id as JobId,
                claim: dollars(*claim),
                tenant: Arc::from(tenants[*tenant]),
                enqueued_ns: id as u64,
            });
        }

        let mut in_flight: VecDeque<QueuedJob> = VecDeque::new();
        let mut dispatched: Vec<QueuedJob> = Vec::new();
        let mut steps = 0usize;
        while dispatched.len() < jobs.len() {
            steps += 1;
            prop_assert!(steps < 100_000, "dispatch loop did not converge");
            match drr.try_dispatch(&mut global) {
                Dispatch::Job(job) => {
                    for tenant in tenants {
                        if let Some(stats) = drr.tenant_stats(tenant) {
                            prop_assert!(
                                stats.in_flight <= tenant_slots,
                                "tenant {tenant} over max_in_flight: {stats:?}"
                            );
                            prop_assert!(
                                stats.claimed <= envelope.budget,
                                "tenant {tenant} over budget share: {stats:?}"
                            );
                        }
                    }
                    in_flight.push_back(job.clone());
                    dispatched.push(job);
                }
                Dispatch::Blocked => {
                    // Progress must always be one release away; blocked
                    // with nothing in flight would be starvation.
                    let done = in_flight.pop_front();
                    prop_assert!(done.is_some(), "blocked with nothing in flight");
                    let done = done.unwrap();
                    global.release(done.claim);
                    drr.release(&done.tenant, done.claim);
                }
            }
        }

        prop_assert_eq!(dispatched.len(), jobs.len());
        for tenant in tenants {
            let order: Vec<JobId> = dispatched
                .iter()
                .filter(|j| &*j.tenant == tenant)
                .map(|j| j.id)
                .collect();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(order, sorted, "lane order not FIFO for {}", tenant);
        }
    }
}

#[test]
fn a_flooding_tenant_defers_only_itself_over_tcp() {
    let recorder = Arc::new(InMemoryRecorder::new());
    let telemetry = Telemetry::new(recorder.clone());

    // One family + one objective → equal claims, so a quantum of exactly
    // one claim makes DRR serve one job per lane per round.
    let job = JobSpec::uniform("fair-mix", 4, 2.0, WorkloadProfile::uniform_test());
    let claim = library_planner()
        .plan(&job, Objective::cheapest())
        .unwrap()
        .predicted_cost();

    let (daemon, server, addr) = start_server(
        ServiceConfig::default()
            .with_workers(1)
            .with_fairness(FairnessConfig::default().with_quantum(claim))
            .with_telemetry(telemetry.clone()),
        NetConfig::default(),
        telemetry,
    );
    let handle = daemon.handle();
    let mut client = NetClient::connect(&addr).unwrap();

    let mk = |name: String, tenant: &str, sim: SimOptions| {
        JobRequest::new(name, job.clone(), Objective::cheapest())
            .with_tenant(tenant)
            .with_sim(sim)
    };
    let sim = |seed: u64| SimOptions {
        noise_cv: 0.2,
        seed,
        replications: 2,
    };

    // Warm the session cache so the backlog below queues faster than the
    // single worker drains it, then plug the worker with a heavy job
    // (hundreds of 1 GB wordcount replications) while the flood forms.
    let warm = client
        .submit_id(&mk("warm".into(), "flood", SimOptions { noise_cv: 0.0, seed: 0, replications: 0 }))
        .unwrap();
    client.await_done(warm).unwrap();
    let plug_request = JobRequest::new(
        "plug",
        astra::workloads::WorkloadSpec::wordcount_gb(1).into_job(),
        Objective::cheapest(),
    )
    .with_tenant("flood")
    .with_sim(SimOptions { noise_cv: 0.2, seed: 42, replications: 1024 });
    let plug = client.submit_id(&plug_request).unwrap();

    const FLOOD: usize = 30;
    const QUIET: usize = 3;
    let flood_ids: Vec<JobId> = (0..FLOOD)
        .map(|i| client.submit_id(&mk(format!("flood-{i}"), "flood", sim(100 + i as u64))).unwrap())
        .collect();
    let quiet_ids: Vec<JobId> = (0..QUIET)
        .map(|i| client.submit_id(&mk(format!("quiet-{i}"), "quiet", sim(200 + i as u64))).unwrap())
        .collect();
    for &id in flood_ids.iter().chain(&quiet_ids) {
        let done = client.await_done(id).unwrap();
        assert_eq!(done["job"]["status"].as_str(), Some("DONE"));
    }
    client.await_done(plug).unwrap();

    // Reconstruct dispatch order from Planned stamps (one worker →
    // strictly serial) for the flood/quiet mix.
    let jobs = handle.jobs();
    let planned_at = |id: JobId| {
        jobs.iter()
            .find(|s| s.id == id)
            .unwrap()
            .history
            .iter()
            .find(|&&(status, _)| status == JobStatus::Planned)
            .map(|&(_, at)| at)
            .unwrap()
    };
    let mut order: Vec<(u64, bool)> = flood_ids
        .iter()
        .map(|&id| (planned_at(id), false))
        .chain(quiet_ids.iter().map(|&id| (planned_at(id), true)))
        .collect();
    order.sort_unstable();
    let quiet_positions: Vec<usize> = order
        .iter()
        .enumerate()
        .filter(|(_, &(_, quiet))| quiet)
        .map(|(pos, _)| pos)
        .collect();

    // The backlog must actually have formed while the plug ran —
    // otherwise the assertions below would be vacuous.
    let first_quiet_accepted = quiet_ids
        .iter()
        .map(|&id| jobs.iter().find(|s| s.id == id).unwrap().history[0].1)
        .min()
        .unwrap();
    let floods_behind_quiet = flood_ids
        .iter()
        .filter(|&&id| planned_at(id) > first_quiet_accepted)
        .count();
    assert!(
        floods_behind_quiet >= 15,
        "backlog never formed ({floods_behind_quiet} flood jobs left): grow the plug"
    );

    // Fairness: with quantum = claim, DRR alternates lanes, so the quiet
    // jobs dispatch within a few rounds of each other instead of behind
    // the flood's whole backlog.
    let spread = quiet_positions.last().unwrap() - quiet_positions[0];
    assert!(
        spread <= QUIET - 1 + 4,
        "quiet tenant was spread across the flood backlog: {quiet_positions:?}"
    );
    assert!(
        *quiet_positions.last().unwrap() <= 2 * QUIET + 4,
        "quiet tenant waited behind the flood: {quiet_positions:?}"
    );

    // The quiet tenant's median queue wait sits well below the flood's.
    let wait = |id: JobId| jobs.iter().find(|s| s.id == id).unwrap().metrics.queue_wait_ns;
    let median = |ids: &[JobId]| {
        let mut waits: Vec<u64> = ids.iter().map(|&id| wait(id)).collect();
        waits.sort_unstable();
        waits[waits.len() / 2]
    };
    assert!(
        median(&quiet_ids) < median(&flood_ids),
        "quiet p50 queue wait {} ≥ flood p50 {}",
        median(&quiet_ids),
        median(&flood_ids)
    );

    server.shutdown();
    daemon.shutdown();

    // Fairness + transport counters (names documented in OBSERVABILITY.md).
    let total = (2 + FLOOD + QUIET) as u64; // warm + plug + mix
    assert_eq!(recorder.counter_value("service.tenant.dispatched"), total);
    assert_eq!(recorder.gauges().get("service.tenant.lanes"), Some(&2.0));
    assert!(recorder.counter_value("service.tenant.rounds") >= 1);
    assert_eq!(recorder.counter_value("service.net.submits"), total);
    assert!(recorder.counter_value("service.net.connections") >= 1);
    assert_eq!(recorder.counter_value("service.net.frame_errors"), 0);
}

// ------------------------------------------------------------ transcript

/// The transcript request pinned in PROTOCOL.md.
fn transcript_request() -> JobRequest {
    JobRequest::new(
        "protocol-demo",
        JobSpec::uniform("protocol-demo", 4, 2.0, WorkloadProfile::uniform_test()),
        Objective::cheapest(),
    )
    .with_tenant("docs")
    .with_sim(SimOptions {
        noise_cv: 0.0,
        seed: 7,
        replications: 1,
    })
}

/// A revised `resubmit` over TCP is served by cloning and patching the
/// prior session (observable in cache stats) and its answer is
/// byte-identical to submitting the revised request cold on a fresh
/// daemon.
#[test]
fn resubmit_requotes_via_clone_and_patch() {
    let mut config = quiet_config().with_workers(1);
    // Pruning off keeps the DAG shape insensitive to coefficient
    // tweaks, putting the revision on the fast clone-and-patch tier.
    config.prune = astra::core::PruneConfig::off();

    let base = JobRequest::new(
        "requote",
        JobSpec::uniform("requote", 6, 2.0, WorkloadProfile::uniform_test()),
        Objective::cheapest(),
    )
    .with_sim(SimOptions {
        noise_cv: 0.0,
        seed: 3,
        replications: 0,
    });
    let mut revised = base.clone();
    revised.job.profile.map_secs_per_mb_128 *= 1.4;

    let (daemon, server, addr) = start_server(config.clone(), NetConfig::default(), Telemetry::disabled());
    let mut client = NetClient::connect(&addr).unwrap();
    let prior = client.submit_id(&base).unwrap();
    client.await_done(prior).unwrap();
    let requote = client.resubmit_id(prior, Some(&revised)).unwrap();
    assert_ne!(requote, prior);
    let mut patched_snap = client.await_done(requote).unwrap();
    let stats = daemon.handle().cache_stats();
    assert!(stats.patched >= 1, "revision was not clone-and-patched: {stats:?}");
    server.shutdown();
    daemon.shutdown();

    // Fresh daemon, same revised request submitted cold.
    let (daemon, server, addr) = start_server(config, NetConfig::default(), Telemetry::disabled());
    let mut client = NetClient::connect(&addr).unwrap();
    let cold = client.submit_id(&revised).unwrap();
    let mut cold_snap = client.await_done(cold).unwrap();
    server.shutdown();
    daemon.shutdown();

    for snap in [&mut patched_snap, &mut cold_snap] {
        normalize_times(snap);
        // Ids and cache-hit flags legitimately differ between the two
        // daemons; everything else must not.
        if let Value::Object(response) = snap {
            if let Some(Value::Object(job)) = response.get_mut("job") {
                job.remove("id");
                job.remove("session_cache_hit");
            }
        }
    }
    assert_eq!(patched_snap, cold_snap, "patched re-quote drifted from a cold plan");
}

/// The client lines of the PROTOCOL.md session, in order.
fn transcript_client_lines() -> Vec<String> {
    let submit = serde_json::json!({
        "op": "submit",
        "request": wire::job_request_to_json(&transcript_request()),
    });
    vec![
        r#"{"op":"ping"}"#.to_string(),
        serde_json::to_string(&submit).unwrap(),
        r#"{"id":1,"op":"await"}"#.to_string(),
        r#"{"id":1,"op":"status"}"#.to_string(),
        r#"{"id":1,"op":"resubmit"}"#.to_string(),
        r#"{"id":2,"op":"await"}"#.to_string(),
        r#"{"id":99,"op":"resubmit"}"#.to_string(),
        r#"{"op":"frobnicate"}"#.to_string(),
        r#"{"id":99,"op":"status"}"#.to_string(),
    ]
}

/// Run the transcript session against a fresh server, returning the
/// interleaved `("S"|"C", line)` rows with timestamps normalized.
fn run_transcript_session() -> Vec<(char, String)> {
    let (daemon, server, addr) = start_server(
        quiet_config().with_workers(1),
        NetConfig::default(),
        Telemetry::disabled(),
    );
    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut rows = Vec::new();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    rows.push(('S', normalized_line(&line)));
    for request in transcript_client_lines() {
        stream.write_all(request.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        rows.push(('C', request));
        line.clear();
        reader.read_line(&mut line).unwrap();
        rows.push(('S', normalized_line(&line)));
    }
    drop(stream);
    server.shutdown();
    daemon.shutdown();
    rows
}

/// The `C:`/`S:` rows between the transcript markers in PROTOCOL.md.
fn transcript_from_protocol_md() -> Vec<(char, String)> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/PROTOCOL.md");
    let text = std::fs::read_to_string(path).expect("PROTOCOL.md at the repository root");
    let begin = text
        .find("<!-- transcript:begin -->")
        .expect("PROTOCOL.md transcript:begin marker");
    let end = text
        .find("<!-- transcript:end -->")
        .expect("PROTOCOL.md transcript:end marker");
    text[begin..end]
        .lines()
        .filter_map(|line| {
            let line = line.trim();
            line.strip_prefix("C: ")
                .map(|rest| ('C', rest.to_string()))
                .or_else(|| line.strip_prefix("S: ").map(|rest| ('S', rest.to_string())))
        })
        .collect()
}

/// Replaying the PROTOCOL.md transcript against a live server must
/// reproduce every response line byte-for-byte (timestamps normalized
/// to 0 on both sides). This is what keeps the spec's examples honest.
#[test]
fn protocol_md_transcript_is_byte_accurate() {
    let documented = transcript_from_protocol_md();
    assert!(
        documented.len() >= 3,
        "PROTOCOL.md transcript block looks empty"
    );
    let live = run_transcript_session();
    assert_eq!(
        documented.len(),
        live.len(),
        "PROTOCOL.md transcript row count differs from a live session"
    );
    for (row, (doc, actual)) in documented.iter().zip(&live).enumerate() {
        assert_eq!(doc.0, actual.0, "row {row}: direction mismatch");
        match doc.0 {
            // Client lines are sent verbatim; they must match what the
            // live session sent so the S lines line up.
            'C' => assert_eq!(doc.1, actual.1, "row {row}: client line drifted"),
            _ => assert_eq!(
                normalized_line(&doc.1),
                actual.1,
                "row {row}: documented response is stale"
            ),
        }
    }
}

/// Regenerates the PROTOCOL.md transcript block. Run with
/// `cargo test -q --test service_net print_protocol_transcript -- --ignored --nocapture`
/// and paste the output between the markers after a protocol change.
#[test]
#[ignore]
fn print_protocol_transcript() {
    for (direction, line) in run_transcript_session() {
        println!("{direction}: {line}");
    }
}
