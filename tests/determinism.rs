//! Reproducibility: every layer of the stack is bit-deterministic under a
//! fixed seed — the property that makes EXPERIMENTS.md's numbers
//! regenerable.

use astra::core::{Astra, Objective};
use astra::faas::SimConfig;
use astra::mapreduce::simulate;
use astra::model::Platform;
use astra::workloads::WorkloadSpec;

#[test]
fn planner_is_deterministic() {
    let job = WorkloadSpec::wordcount_gb(1).into_job();
    let a = Astra::with_defaults()
        .plan(&job, Objective::min_time_with_budget_dollars(0.004))
        .unwrap();
    let b = Astra::with_defaults()
        .plan(&job, Objective::min_time_with_budget_dollars(0.004))
        .unwrap();
    assert_eq!(a.spec, b.spec);
    assert_eq!(a.predicted_cost(), b.predicted_cost());
}

#[test]
fn plans_are_stable_across_thread_counts() {
    // The parallel planner must emit the same plan, cost, and JCT bits
    // whether it runs on 1, 2, or 8 worker threads, in both solver
    // directions. `RAYON_NUM_THREADS` is re-read per parallel call, so
    // sweeping it inside one process is sound (and other tests in this
    // binary are thread-count independent by this very property).
    let job = WorkloadSpec::wordcount_gb(1).into_job();
    let astra = Astra::with_defaults();
    for objective in [
        Objective::min_time_with_budget_dollars(0.004),
        Objective::min_cost_with_deadline_s(120.0),
    ] {
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let reference = astra.plan(&job, objective).unwrap();
        for threads in ["2", "8"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let plan = astra.plan(&job, objective).unwrap();
            assert_eq!(plan.spec, reference.spec, "{objective} @{threads} threads");
            assert_eq!(plan.predicted_cost(), reference.predicted_cost());
            assert_eq!(
                plan.predicted_jct_s().to_bits(),
                reference.predicted_jct_s().to_bits()
            );
        }
        std::env::remove_var("RAYON_NUM_THREADS");
    }
}

#[test]
fn noisy_simulation_is_seed_deterministic() {
    let job = WorkloadSpec::QueryUservisits.into_job();
    let plan = Astra::with_defaults()
        .plan(&job, Objective::fastest())
        .unwrap();
    let config = || SimConfig::deterministic(Platform::aws_lambda()).with_noise(0.25, 1234);
    let a = simulate(&job, &plan, config()).unwrap();
    let b = simulate(&job, &plan, config()).unwrap();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.total_cost(), b.total_cost());
    assert_eq!(a.invoices.len(), b.invoices.len());
    for (x, y) in a.invoices.iter().zip(&b.invoices) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.billed_us, y.billed_us);
    }
}

#[test]
fn different_seeds_differ_same_mean_behaviour() {
    let job = WorkloadSpec::wordcount_gb(1).into_job();
    let plan = Astra::with_defaults()
        .plan(&job, Objective::fastest())
        .unwrap();
    let run = |seed| {
        simulate(
            &job,
            &plan,
            SimConfig::deterministic(Platform::aws_lambda()).with_noise(0.2, seed),
        )
        .unwrap()
        .jct_s()
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(a, b, "different seeds must perturb differently");
    // But both stay within a plausible band around the prediction.
    for v in [a, b] {
        assert!(v > plan.predicted_jct_s() * 0.6 && v < plan.predicted_jct_s() * 2.5);
    }
}

#[test]
fn data_generation_is_seed_deterministic() {
    use astra::storage::MemStore;
    use std::sync::Arc;
    let spec = WorkloadSpec::Sort100;
    let job = spec.tiny_job(3, 8);
    let s1 = Arc::new(MemStore::new());
    let s2 = Arc::new(MemStore::new());
    spec.generate_inputs(&job, &s1, 99);
    spec.generate_inputs(&job, &s2, 99);
    for i in 0..3 {
        let k = astra::mapreduce::keys::input(&job.name, i);
        assert_eq!(s1.get(&k).unwrap(), s2.get(&k).unwrap());
    }
}
