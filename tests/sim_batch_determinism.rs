//! Parallel-sweep determinism: fanning simulation runs over threads must
//! change wall-clock only, never a single report bit. Each seed owns an
//! isolated RNG and results are collected in input order, so the batch
//! APIs (`SimBatch`, `simulate_batch`, `harness::measure_with`) are
//! required to match their serial reference loops exactly at any
//! `RAYON_NUM_THREADS` — the simulation-side counterpart of the planner
//! guarantee in `parallel_equivalence.rs`.

use astra::core::Objective;
use astra::faas::{derive_seed, SimBatch, SimConfig, SimReport};
use astra::mapreduce::{simulate, simulate_batch, SimCase};
use astra::model::Platform;
use astra::workloads::WorkloadSpec;
use astra_experiments::harness;

/// The thread counts swept in every test. The rayon shim re-reads
/// `RAYON_NUM_THREADS` on each parallel call, so sweeping it inside one
/// process is sound.
const THREADS: [&str; 3] = ["1", "2", "8"];

fn assert_reports_identical(a: &SimReport, b: &SimReport, context: &str) {
    assert_eq!(a.makespan, b.makespan, "makespan ({context})");
    assert_eq!(a.total_cost(), b.total_cost(), "cost ({context})");
    assert_eq!(a.invoices, b.invoices, "invoices ({context})");
    assert_eq!(a.events, b.events, "event count ({context})");
    assert_eq!(a.ledger.gets, b.ledger.gets, "gets ({context})");
    assert_eq!(a.ledger.puts, b.ledger.puts, "puts ({context})");
}

#[test]
fn simulate_batch_is_bit_identical_to_serial_loop_at_any_thread_count() {
    let job = WorkloadSpec::wordcount_gb(1).into_job();
    let plan = harness::astra().plan(&job, Objective::fastest()).unwrap();
    let configs: Vec<SimConfig> = (0..6)
        .map(|i| {
            SimConfig::deterministic(Platform::aws_lambda()).with_noise(0.2, derive_seed(11, i))
        })
        .collect();

    let serial: Vec<SimReport> = configs
        .iter()
        .map(|c| simulate(&job, &plan, c.clone()).unwrap())
        .collect();

    for threads in THREADS {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let cases: Vec<SimCase<'_>> = configs
            .iter()
            .map(|c| SimCase {
                job: &job,
                plan: &plan,
                config: c.clone(),
            })
            .collect();
        let parallel = simulate_batch(cases);
        assert_eq!(parallel.len(), serial.len());
        for (i, (p, s)) in parallel.iter().zip(&serial).enumerate() {
            assert_reports_identical(
                p.as_ref().unwrap(),
                s,
                &format!("run {i} @{threads} threads"),
            );
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

#[test]
fn sim_batch_matches_its_serial_reference_at_any_thread_count() {
    let job = WorkloadSpec::QueryUservisits.into_job();
    let plan = harness::astra().plan(&job, Objective::cheapest()).unwrap();
    let compiled = astra::mapreduce::compile(&job, &plan);

    let build = || {
        let mut batch = SimBatch::with_capacity(4);
        for i in 0..4 {
            let config = SimConfig::deterministic(Platform::aws_lambda())
                .with_noise(0.15, derive_seed(3, i));
            batch.push(config, compiled.roots.clone(), compiled.inputs.clone());
        }
        batch
    };
    let serial = build().run_serial();

    for threads in THREADS {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let parallel = build().run();
        for (i, (p, s)) in parallel.iter().zip(&serial).enumerate() {
            assert_reports_identical(
                p.as_ref().unwrap(),
                s.as_ref().unwrap(),
                &format!("run {i} @{threads} threads"),
            );
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

#[test]
fn measure_with_matches_serial_reference_at_any_thread_count() {
    let job = WorkloadSpec::wordcount_gb(1).into_job();
    let plan = harness::astra().plan(&job, Objective::fastest()).unwrap();
    let seeds: Vec<u64> = (0..5).map(|i| derive_seed(7, i)).collect();

    let reference = harness::measure_with_serial(&job, &plan, harness::NOISE_CV, &seeds);

    for threads in THREADS {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let m = harness::measure_with(&job, &plan, harness::NOISE_CV, &seeds);
        // Float sums fold in seed order in both paths, so even the mean
        // must match to the bit, not just approximately.
        assert_eq!(
            m.jct_s.to_bits(),
            reference.jct_s.to_bits(),
            "mean JCT bits @{threads} threads"
        );
        assert_eq!(m.cost, reference.cost, "mean cost @{threads} threads");
        assert_eq!(
            m.timeout_violations, reference.timeout_violations,
            "violations @{threads} threads"
        );
        assert_reports_identical(
            &m.last_report,
            &reference.last_report,
            &format!("last report @{threads} threads"),
        );
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

#[test]
fn measure_batch_matches_per_case_measure_with() {
    let job = WorkloadSpec::QueryUservisits.into_job();
    let astra = harness::astra();
    let fast = astra.plan(&job, Objective::fastest()).unwrap();
    let cheap = astra.plan(&job, Objective::cheapest()).unwrap();
    let seeds = [11, 23, 37];

    let batch = harness::measure_batch(&[(&job, &fast), (&job, &cheap)], 0.1, &seeds);
    for (m, plan) in batch.iter().zip([&fast, &cheap]) {
        let solo = harness::measure_with(&job, plan, 0.1, &seeds);
        assert_eq!(m.jct_s.to_bits(), solo.jct_s.to_bits());
        assert_eq!(m.cost, solo.cost);
        assert_reports_identical(&m.last_report, &solo.last_report, "batch vs solo");
    }
}
