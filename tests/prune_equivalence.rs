//! Dominance-pruning / potential-CSP equivalence: the accelerated
//! planner core (Pareto-pruned DAG + backward-potential label search)
//! must return **bit-identical** `JobConfig`s to both the unpruned plain
//! CSP and the unpruned exhaustive sweep — for every job, both
//! objectives, a grid of bounds, and any rayon thread count.
//!
//! This is the acceptance gate for the pruned planner: any divergence —
//! a different tier, a different `k_M`, even a tie broken differently —
//! fails the suite. CI runs the N=50 full-space smoke test on every
//! push (`prune_smoke`), the property tests cover randomized jobs.

use astra::core::solver::{solve_exhaustive, solve_on_dag, solve_on_dag_with_potentials};
use astra::core::{
    ConfigSpace, Objective, PlannerDag, PlannerPotentials, PruneConfig,
    Strategy as SolverStrategy,
};
use astra::model::{JobConfig, JobSpec, Platform, WorkloadProfile};
use astra::pricing::{Money, PriceCatalog};
use proptest::prelude::*;

/// Last-wins global pool pin (same helper as `parallel_equivalence`).
fn pin_threads(n: usize) {
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global();
}

/// A small randomized job family (mirrors `planner_properties`).
fn arb_job() -> impl proptest::strategy::Strategy<Value = JobSpec> + Clone {
    (
        2usize..12,
        0.5f64..20.0,
        0.2f64..1.5,
        0.05f64..1.0,
        0.3f64..1.0,
    )
        .prop_map(|(n, size_mb, map_u, alpha, beta)| {
            let profile = WorkloadProfile {
                name: "prune-prop".to_string(),
                map_secs_per_mb_128: map_u,
                reduce_secs_per_mb_128: map_u * 0.7,
                coord_secs_per_mb_128: 0.002,
                shuffle_ratio: alpha,
                reduce_ratio: beta,
                state_object_mb: 0.5,
                single_pass_reduce: false,
            };
            JobSpec::uniform("prune-prop", n, size_mb, profile)
        })
}

/// The three solver paths under test, sharing one space.
struct Solvers {
    job: JobSpec,
    platform: Platform,
    catalog: PriceCatalog,
    space: ConfigSpace,
    full_dag: PlannerDag,
    pruned_dag: PlannerDag,
    potentials: PlannerPotentials,
}

impl Solvers {
    fn new(job: JobSpec, platform: Platform, tiers: &[u32]) -> Solvers {
        let space = ConfigSpace::with_tiers(&job, &platform, tiers);
        Self::with_space(job, platform, space)
    }

    /// Same harness over the collapsed (bundled) production space,
    /// restricted to `tiers` so the exhaustive reference stays cheap.
    fn bundled(job: JobSpec, platform: Platform, tiers: &[u32]) -> Solvers {
        let mut space = ConfigSpace::bundled(&job, &platform);
        space.memory_tiers_mb = tiers.to_vec();
        Self::with_space(job, platform, space)
    }

    fn with_space(job: JobSpec, platform: Platform, space: ConfigSpace) -> Solvers {
        let catalog = PriceCatalog::aws_2020();
        let full_dag = PlannerDag::build_with(&job, &platform, &catalog, &space, PruneConfig::off());
        let pruned_dag =
            PlannerDag::build_with(&job, &platform, &catalog, &space, PruneConfig::on());
        let potentials = PlannerPotentials::compute(&pruned_dag);
        Solvers {
            job,
            platform,
            catalog,
            space,
            full_dag,
            pruned_dag,
            potentials,
        }
    }

    fn accelerated(&self, objective: Objective) -> Option<JobConfig> {
        solve_on_dag_with_potentials(
            &self.pruned_dag,
            &self.potentials,
            objective,
            SolverStrategy::ExactCsp,
            &astra::telemetry::Telemetry::disabled(),
        )
    }

    fn plain_csp(&self, objective: Objective) -> Option<JobConfig> {
        solve_on_dag(&self.full_dag, objective, SolverStrategy::ExactCsp)
    }

    fn exhaustive(&self, objective: Objective) -> Option<JobConfig> {
        solve_exhaustive(&self.job, &self.platform, &self.catalog, &self.space, objective)
    }

    /// The bound grid: budgets and deadlines spanning just-below-feasible
    /// through unconstrained.
    fn objectives(&self) -> Vec<Objective> {
        let Some(cheapest) = self.plain_csp(Objective::cheapest()) else {
            return Vec::new();
        };
        let fastest = self
            .plain_csp(Objective::fastest())
            .expect("cheapest exists, so fastest does");
        let ev = |c: &JobConfig| {
            let e = astra::model::evaluate(&self.job, &self.platform, c, &self.catalog).unwrap();
            (e.jct_s(), e.total_cost())
        };
        let (t_cheap, c_cheap) = ev(&cheapest);
        let (t_fast, c_fast) = ev(&fastest);
        let mut out = Vec::new();
        for frac in [-0.1, 0.0, 0.25, 0.5, 0.75, 1.0, 2.0] {
            let budget = c_cheap.nanos() as f64 + (c_fast.nanos() - c_cheap.nanos()) as f64 * frac;
            out.push(Objective::MinimizeTime {
                budget: Money::from_nanos(budget as i128),
            });
            let deadline_s = t_fast + (t_cheap - t_fast) * frac;
            out.push(Objective::MinimizeCost { deadline_s });
        }
        out.push(Objective::cheapest());
        out.push(Objective::fastest());
        out
    }

    fn assert_equivalent(&self) {
        for objective in self.objectives() {
            let fast = self.accelerated(objective);
            let plain = self.plain_csp(objective);
            assert_eq!(fast, plain, "pruned+potentials vs plain CSP at {objective}");
            let brute = self.exhaustive(objective);
            assert_eq!(fast, brute, "pruned+potentials vs exhaustive at {objective}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized jobs on the AWS platform: all three solver paths agree
    /// config-for-config on both objectives across the bound grid.
    #[test]
    fn pruned_potentials_match_unpruned_solvers(job in arb_job()) {
        Solvers::new(job, Platform::aws_lambda(), &[128, 768, 1792]).assert_equivalent();
    }

    /// Same on the paper-literal platform (different constraint surface:
    /// no efficiency curve, fixed bandwidth).
    #[test]
    fn pruned_potentials_match_on_paper_platform(job in arb_job()) {
        Solvers::new(job, Platform::paper_literal(10.0), &[128, 512, 3008]).assert_equivalent();
    }

    /// The collapsed (bundled) production space: the accelerated path —
    /// pruned SoA DAG + potentials — must agree bit-for-bit with the
    /// unpruned plain CSP and the exhaustive sweep over the *same*
    /// bundled space, across the whole bound grid. This is the
    /// equivalence gate for the production-N build.
    #[test]
    fn collapsed_space_matches_unpruned_solvers(job in arb_job()) {
        Solvers::bundled(job, Platform::aws_lambda(), &[128, 768, 1792]).assert_equivalent();
    }
}

/// The thread-count leg: the pruned DAG, its potentials and every answer
/// are identical at 1, 2 and 8 rayon threads (or honour
/// `RAYON_NUM_THREADS` when CI pins it externally). The global pool can
/// only be pinned per process, so this sweeps re-pins last-wins like
/// `parallel_equivalence` does.
#[test]
fn pruned_planning_is_thread_count_invariant() {
    let job = JobSpec::uniform("threads", 9, 2.0, WorkloadProfile::uniform_test());
    let platform = Platform::aws_lambda();
    let mut reference: Option<Vec<Option<JobConfig>>> = None;
    for threads in [1usize, 2, 8] {
        pin_threads(threads);
        let s = Solvers::new(job.clone(), platform.clone(), &[128, 768, 1792]);
        let answers: Vec<Option<JobConfig>> =
            s.objectives().into_iter().map(|o| s.accelerated(o)).collect();
        assert!(!answers.is_empty());
        match &reference {
            None => reference = Some(answers),
            Some(r) => assert_eq!(r, &answers, "{threads} threads diverged"),
        }
    }
}

/// The CI smoke test (`--no-prune` equivalence at N=50, full space):
/// cheap enough for every push, big enough that pruning actually fires.
#[test]
fn n50_full_space_smoke() {
    let job = JobSpec::uniform("smoke", 50, 4.0, WorkloadProfile::uniform_test());
    let platform = Platform::aws_lambda();
    let catalog = PriceCatalog::aws_2020();
    let space = ConfigSpace::full(&job, &platform);
    let full = PlannerDag::build_with(&job, &platform, &catalog, &space, PruneConfig::off());
    let pruned = PlannerDag::build_with(&job, &platform, &catalog, &space, PruneConfig::on());
    assert!(
        pruned.prune_stats().total() > 0,
        "pruning must fire on the full 46-tier space"
    );
    assert!(pruned.graph().edge_count() < full.graph().edge_count());
    let potentials = PlannerPotentials::compute(&pruned);
    let tel = astra::telemetry::Telemetry::disabled();

    let cheapest = solve_on_dag(&full, Objective::cheapest(), SolverStrategy::ExactCsp).unwrap();
    let fastest = solve_on_dag(&full, Objective::fastest(), SolverStrategy::ExactCsp).unwrap();
    let ev = |c: &JobConfig| {
        let e = astra::model::evaluate(&job, &platform, c, &catalog).unwrap();
        (e.jct_s(), e.total_cost())
    };
    let (t_fast, c_fast) = ev(&fastest);
    let (t_cheap, c_cheap) = ev(&cheapest);
    for frac in [0.0, 0.5, 1.0] {
        let budget =
            c_cheap.nanos() as f64 + (c_fast.nanos() - c_cheap.nanos()) as f64 * frac;
        let deadline_s = t_fast + (t_cheap - t_fast) * frac;
        for objective in [
            Objective::MinimizeTime {
                budget: Money::from_nanos(budget as i128),
            },
            Objective::MinimizeCost { deadline_s },
        ] {
            let fast = solve_on_dag_with_potentials(
                &pruned,
                &potentials,
                objective,
                SolverStrategy::ExactCsp,
                &tel,
            );
            let plain = solve_on_dag(&full, objective, SolverStrategy::ExactCsp);
            assert_eq!(fast, plain, "diverged at {objective}");
        }
    }
}
