//! Cross-crate integration: every paper workload, planned by the real
//! planner and executed by the real byte-level runtime, produces
//! analytics output that matches a single-pass reference computation.

use std::sync::Arc;

use astra::core::{Astra, Objective, Strategy};
use astra::mapreduce::{keys, run_local};
use astra::model::Platform;
use astra::pricing::PriceCatalog;
use astra::storage::MemStore;
use astra::workloads::{QueryApp, SortApp, WordCountApp, WorkloadSpec};
use astra_simcore::summary::relative_error;

fn planner() -> Astra {
    Astra::new(
        Platform::aws_lambda(),
        PriceCatalog::aws_2020(),
        Strategy::ExactCsp,
    )
}

/// Plan a tiny job, generate data, run it, return (store, result bytes).
fn run_workload(spec: WorkloadSpec, n: usize, kb: usize, seed: u64) -> (Arc<MemStore>, Vec<u8>) {
    let job = spec.tiny_job(n, kb);
    let plan = planner()
        .plan(&job, Objective::min_cost_with_deadline_s(3600.0))
        .expect("tiny jobs always plan");
    let store = Arc::new(MemStore::new());
    spec.generate_inputs(&job, &store, seed);
    let report = run_local(&job, &plan, &store, spec.app().as_ref()).expect("runs");
    (store, report.result.to_vec())
}

fn concatenated_input(store: &MemStore, job_name: &str, n: usize) -> Vec<u8> {
    let mut all = Vec::new();
    for i in 0..n {
        all.extend_from_slice(&store.get(&keys::input(job_name, i)).unwrap());
    }
    all
}

#[test]
fn wordcount_distributed_equals_reference() {
    let spec = WorkloadSpec::wordcount_gb(1);
    let n = 10;
    let (store, result) = run_workload(spec, n, 32, 7);
    let job_name = spec.tiny_job(n, 32).name;
    let reference = WordCountApp::reference_count(&concatenated_input(&store, &job_name, n));

    let mut distributed = std::collections::BTreeMap::new();
    for line in String::from_utf8(result).unwrap().lines() {
        let (w, c) = line.rsplit_once('\t').unwrap();
        distributed.insert(w.to_string(), c.parse::<u64>().unwrap());
    }
    assert_eq!(distributed, reference);
}

#[test]
fn query_distributed_equals_reference() {
    let spec = WorkloadSpec::QueryUservisits;
    let n = 8;
    let (store, result) = run_workload(spec, n, 24, 9);
    let job_name = spec.tiny_job(n, 24).name;
    let reference = QueryApp::reference_aggregate(&concatenated_input(&store, &job_name, n));

    let mut distributed = std::collections::BTreeMap::new();
    for line in String::from_utf8(result).unwrap().lines() {
        let (k, cents) = line.rsplit_once('\t').unwrap();
        distributed.insert(k.to_string(), cents.parse::<u64>().unwrap());
    }
    assert_eq!(distributed, reference);
}

#[test]
fn sort_outputs_are_sorted_runs_conserving_all_records() {
    // Sort uses the single-pass schedule: each final reducer emits one
    // sorted run; together the runs must contain exactly the input
    // record multiset.
    let spec = WorkloadSpec::Sort100;
    let n = 8;
    let job = spec.tiny_job(n, 20);
    let plan = planner()
        .plan(&job, Objective::min_cost_with_deadline_s(3600.0))
        .unwrap();
    let store = Arc::new(MemStore::new());
    spec.generate_inputs(&job, &store, 3);
    let report = run_local(&job, &plan, &store, spec.app().as_ref()).unwrap();

    let app = SortApp::default();
    let steps = report.steps;
    let mut all_out: Vec<Vec<u8>> = Vec::new();
    for r in 0.. {
        let key = keys::reduce_out(&job.name, steps, r);
        match store.get(&key) {
            Ok(bytes) => {
                assert!(app.is_sorted(&bytes), "run {r} is not sorted");
                all_out.extend(bytes.chunks(100).map(|c| c.to_vec()));
            }
            Err(_) => break,
        }
    }
    let mut input_records: Vec<Vec<u8>> = concatenated_input(&store, &job.name, n)
        .chunks(100)
        .map(|c| c.to_vec())
        .collect();
    input_records.sort();
    all_out.sort();
    assert_eq!(all_out, input_records, "records must be conserved");
}

#[test]
fn simulated_and_local_runs_share_the_same_dataflow() {
    // The simulator executes the same plan the byte-level runtime does;
    // their mapper/reducer rosters must agree.
    use astra::faas::SimConfig;
    use astra::mapreduce::simulate;

    let spec = WorkloadSpec::wordcount_gb(1);
    let job = spec.tiny_job(9, 16);
    let plan = planner()
        .plan(&job, Objective::min_cost_with_deadline_s(3600.0))
        .unwrap();

    let store = Arc::new(MemStore::new());
    spec.generate_inputs(&job, &store, 5);
    let local = run_local(&job, &plan, &store, &WordCountApp).unwrap();

    let sim = simulate(&job, &plan, SimConfig::deterministic(Platform::aws_lambda())).unwrap();
    // Invocations = mappers + coordinator + reducers.
    assert_eq!(
        sim.invocation_count(),
        local.mappers + 1 + local.reducers
    );
    // PUT counts: sim writes state objects + shuffle + reduce outputs;
    // the local store saw the same writes.
    assert_eq!(
        sim.ledger.puts as usize,
        local.mappers + local.steps + local.reducers
    );
}

#[test]
fn model_predicts_simulated_jct_exactly_when_clean() {
    // End-to-end: the planner's prediction matches a noise-free,
    // cold-start-free simulation for the actual paper-scale jobs.
    use astra::faas::SimConfig;
    use astra::mapreduce::simulate;

    for spec in WorkloadSpec::paper_suite() {
        let job = spec.into_job();
        let mut platform = Platform::aws_lambda();
        platform.cold_start_s = 0.0;
        let astra = Astra::new(platform.clone(), PriceCatalog::aws_2020(), Strategy::ExactCsp);
        let plan = astra.plan(&job, Objective::fastest()).unwrap();
        let report = simulate(&job, &plan, SimConfig::deterministic(platform)).unwrap();
        let err = relative_error(report.jct_s(), plan.predicted_jct_s());
        assert!(err < 1e-6, "{}: err {err}", spec.label());
    }
}
