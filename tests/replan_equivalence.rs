//! Incremental re-planning equivalence: a session carried through a
//! chain of [`PlannerSession::apply_delta`] calls must answer every
//! query **bit-identically** to a session cold-built at the same final
//! inputs — whichever repair tier each delta took (fast recost, recipe
//! replay, or full rebuild), at any rayon thread count, with the answer
//! memo engaged.
//!
//! The suite also pins the observable repair tiers for representative
//! deltas (coefficient/price → in-place patch on unpruned DAGs; shape
//! changes → rebuild) and that memo-served answers equal fresh solves.

use astra::core::{
    ConfigSpace, Objective, PlannerSession, PruneConfig, ReplanOutcome,
    Strategy as SolverStrategy,
};
use astra::model::{JobSpec, Platform, WorkloadProfile};
use astra::pricing::{Money, PriceCatalog};
use proptest::prelude::*;

/// Last-wins global pool pin (same helper as `parallel_equivalence`).
fn pin_threads(n: usize) {
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global();
}

fn base_profile(map_u: f64) -> WorkloadProfile {
    WorkloadProfile {
        name: "replan-prop".to_string(),
        map_secs_per_mb_128: map_u,
        reduce_secs_per_mb_128: map_u * 0.7,
        coord_secs_per_mb_128: 0.002,
        shuffle_ratio: 0.6,
        reduce_ratio: 0.6,
        state_object_mb: 0.5,
        single_pass_reduce: false,
    }
}

/// One step of an interactive editing chain.
#[derive(Debug, Clone)]
enum DeltaStep {
    /// Recalibrate the mapper coefficient (multiplier).
    MapperCoeff(f64),
    /// Recalibrate the reduce coefficient (multiplier).
    ReduceCoeff(f64),
    /// Recalibrate the coordinator coefficient (multiplier).
    CoordCoeff(f64),
    /// Scale the lambda per-GB-second price by `num/denom`.
    Prices(i128, i128),
    /// Rename the job (cosmetic).
    Rename,
    /// Change every object's size (same count: no reshape).
    ObjectSize(f64),
    /// Change the input object count (reshape: space re-buckets).
    InputCount(usize),
}

fn arb_step() -> impl Strategy<Value = DeltaStep> + Clone {
    // (No `prop_oneof` in the offline shim: pick the variant by index.)
    (
        0usize..7,
        0.5f64..2.0,
        1i128..40,
        1i128..40,
        0.5f64..8.0,
        3usize..12,
    )
        .prop_map(|(kind, mult, num, denom, size, count)| match kind {
            0 => DeltaStep::MapperCoeff(mult),
            1 => DeltaStep::ReduceCoeff(mult),
            2 => DeltaStep::CoordCoeff(mult),
            3 => DeltaStep::Prices(num, denom),
            4 => DeltaStep::Rename,
            5 => DeltaStep::ObjectSize(size),
            _ => DeltaStep::InputCount(count),
        })
}

/// Apply one step to the current `(job, catalog)` inputs.
fn apply_step(step: &DeltaStep, job: &mut JobSpec, catalog: &mut PriceCatalog) {
    match *step {
        DeltaStep::MapperCoeff(m) => job.profile.map_secs_per_mb_128 *= m,
        DeltaStep::ReduceCoeff(m) => job.profile.reduce_secs_per_mb_128 *= m,
        DeltaStep::CoordCoeff(m) => job.profile.coord_secs_per_mb_128 *= m,
        DeltaStep::Prices(num, denom) => {
            catalog.lambda.per_gb_second =
                Money::from_nanos(catalog.lambda.per_gb_second.nanos() * num / denom);
        }
        DeltaStep::Rename => job.name.push('\''),
        DeltaStep::ObjectSize(size_mb) => {
            let n = job.num_objects();
            *job = JobSpec::uniform(&job.name, n, size_mb, job.profile.clone());
        }
        DeltaStep::InputCount(n) => {
            let size = job.object_sizes_mb[0];
            *job = JobSpec::uniform(&job.name, n, size, job.profile.clone());
        }
    }
}

/// Every query the equivalence check asks of both sessions: the
/// unconstrained endpoints plus budget and deadline grids spanning them.
fn assert_sessions_agree(warm: &PlannerSession, cold: &PlannerSession, ctx: &str) {
    // Potentials must be bit-identical: they are inputs to every label
    // search, so this catches repair drift even where answers tie.
    let (wp, cp) = (warm.potentials(), cold.potentials());
    assert_eq!(wp.min_time_to().len(), cp.min_time_to().len(), "{ctx}: node count");
    for (i, (a, b)) in wp.min_time_to().iter().zip(cp.min_time_to()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: min_time_to[{i}]");
    }
    for (i, (a, b)) in wp.min_cost_to().iter().zip(cp.min_cost_to()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: min_cost_to[{i}]");
    }
    // Edge metrics must be bit-identical too (patched arena vs cold).
    let (wg, cg) = (warm.dag().graph(), cold.dag().graph());
    assert_eq!(wg.node_count(), cg.node_count(), "{ctx}: nodes");
    assert_eq!(wg.edge_count(), cg.edge_count(), "{ctx}: edges");
    for eid in wg.edge_ids() {
        let (a, b) = (wg.edge(eid), cg.edge(eid));
        assert_eq!(a.time_s.to_bits(), b.time_s.to_bits(), "{ctx}: edge {eid:?} time");
        assert_eq!(a.cost_nanos, b.cost_nanos, "{ctx}: edge {eid:?} cost");
        assert_eq!(wg.endpoints(eid), cg.endpoints(eid), "{ctx}: edge {eid:?} ends");
    }

    let fastest = Objective::fastest();
    let cheapest = Objective::cheapest();
    assert_eq!(warm.solve(fastest), cold.solve(fastest), "{ctx}: fastest");
    assert_eq!(warm.solve(cheapest), cold.solve(cheapest), "{ctx}: cheapest");

    let (Ok(lo), Ok(hi)) = (cold.plan(cheapest), cold.plan(fastest)) else {
        return; // fully infeasible job: both sessions agreed on None above
    };
    let (lo_c, hi_c) = (lo.predicted_cost().nanos(), hi.predicted_cost().nanos());
    for step in 0..6 {
        let budget = Money::from_nanos(lo_c + (hi_c - lo_c) * step / 5);
        let o = Objective::MinimizeTime { budget };
        assert_eq!(warm.solve(o), cold.solve(o), "{ctx}: budget step {step}");
        // Same bound again: memo-served answers must equal the fresh solve.
        assert_eq!(warm.solve(o), cold.solve(o), "{ctx}: budget step {step} (memo)");
    }
    // Deadlines from infeasibly tight to loose around the fastest JCT.
    for (i, frac) in [0.5, 0.9, 1.0, 1.5, 3.0].iter().enumerate() {
        let o = Objective::MinimizeCost {
            deadline_s: hi.predicted_jct_s() * frac,
        };
        assert_eq!(warm.solve(o), cold.solve(o), "{ctx}: deadline {i}");
        assert_eq!(warm.solve(o), cold.solve(o), "{ctx}: deadline {i} (memo)");
    }
}

fn run_chain(
    steps: &[DeltaStep],
    strategy: SolverStrategy,
    prune: PruneConfig,
    threads: usize,
) {
    pin_threads(threads);
    let platform = Platform::aws_lambda();
    let mut job = JobSpec::uniform("replan-chain", 6, 2.0, base_profile(0.4));
    let mut catalog = PriceCatalog::aws_2020();
    let space = |j: &JobSpec| ConfigSpace::with_tiers(j, &platform, &[128, 512, 1792, 3008]);

    let mut warm = PlannerSession::new(
        &job,
        platform.clone(),
        catalog,
        space(&job),
        strategy,
        prune,
    );
    // Warm the memo before the first delta so invalidation is exercised.
    let _ = warm.solve(Objective::fastest());
    let _ = warm.solve(Objective::cheapest());

    for (i, step) in steps.iter().enumerate() {
        apply_step(step, &mut job, &mut catalog);
        let sp = space(&job);
        warm.apply_delta(&job, &platform, &catalog, &sp);
        let cold = PlannerSession::new(&job, platform.clone(), catalog, sp, strategy, prune);
        assert_sessions_agree(&warm, &cold, &format!("step {i} ({step:?}, t={threads})"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random delta chains, unpruned exact sessions (fast-recost tier).
    #[test]
    fn delta_chains_match_cold_sessions_unpruned(
        steps in proptest::collection::vec(arb_step(), 1..5)
    ) {
        run_chain(&steps, SolverStrategy::ExactCsp, PruneConfig::off(), 1);
    }

    /// Random delta chains, pruned exact sessions (replay tier).
    #[test]
    fn delta_chains_match_cold_sessions_pruned(
        steps in proptest::collection::vec(arb_step(), 1..5)
    ) {
        run_chain(&steps, SolverStrategy::ExactCsp, PruneConfig::on(), 2);
    }
}

/// A fixed representative chain at every supported thread count, both
/// prune settings (the `RAYON_NUM_THREADS=1/2/8` acceptance grid).
#[test]
fn fixed_chain_is_thread_count_invariant() {
    let steps = [
        DeltaStep::MapperCoeff(1.05),
        DeltaStep::Prices(11, 10),
        DeltaStep::ReduceCoeff(0.9),
        DeltaStep::InputCount(9),
        DeltaStep::ObjectSize(3.0),
        DeltaStep::Rename,
    ];
    for &threads in &[1usize, 2, 8] {
        run_chain(&steps, SolverStrategy::ExactCsp, PruneConfig::off(), threads);
        run_chain(&steps, SolverStrategy::ExactCsp, PruneConfig::on(), threads);
    }
}

/// Algorithm 1 sessions (prune forced off internally) survive chains.
#[test]
fn algorithm1_chains_match_cold_sessions() {
    let steps = [
        DeltaStep::MapperCoeff(1.2),
        DeltaStep::Prices(9, 10),
        DeltaStep::CoordCoeff(1.5),
    ];
    run_chain(&steps, SolverStrategy::Algorithm1, PruneConfig::on(), 1);
}

/// The repair tiers land where the taxonomy says they should.
#[test]
fn outcomes_follow_the_delta_taxonomy() {
    let platform = Platform::aws_lambda();
    let mut job = JobSpec::uniform("tiers", 6, 2.0, base_profile(0.4));
    let mut catalog = PriceCatalog::aws_2020();
    let space = |j: &JobSpec| ConfigSpace::with_tiers(j, &platform, &[128, 512, 1792, 3008]);
    let mut s = PlannerSession::new(
        &job,
        platform.clone(),
        catalog,
        space(&job),
        SolverStrategy::ExactCsp,
        PruneConfig::off(),
    );

    // Identity: untouched inputs change nothing.
    let sp = space(&job);
    assert_eq!(s.apply_delta(&job, &platform, &catalog, &sp), ReplanOutcome::Unchanged);

    // Rename: cosmetic.
    job.name = "tiers-renamed".to_string();
    assert_eq!(s.apply_delta(&job, &platform, &catalog, &sp), ReplanOutcome::Unchanged);
    assert_eq!(s.job().name, "tiers-renamed");

    // Gentle mapper recalibration on an unpruned DAG: fast recost.
    job.profile.map_secs_per_mb_128 *= 1.01;
    assert_eq!(s.apply_delta(&job, &platform, &catalog, &sp), ReplanOutcome::Patched);

    // Price bump: fast recost.
    catalog.lambda.per_gb_second = Money::from_nanos(catalog.lambda.per_gb_second.nanos() * 2);
    assert_eq!(s.apply_delta(&job, &platform, &catalog, &sp), ReplanOutcome::Patched);

    // Reduce coefficient: outside the fast tier — recipe replay.
    job.profile.reduce_secs_per_mb_128 *= 1.01;
    assert_eq!(s.apply_delta(&job, &platform, &catalog, &sp), ReplanOutcome::Replayed);

    // Input-count change: reshape — rebuild.
    job = JobSpec::uniform(&job.name, 8, 2.0, job.profile.clone());
    let sp = space(&job);
    assert_eq!(s.apply_delta(&job, &platform, &catalog, &sp), ReplanOutcome::Rebuilt);

    // After the rebuild the session still answers like a cold build.
    let cold = PlannerSession::new(
        &job,
        platform.clone(),
        catalog,
        sp,
        SolverStrategy::ExactCsp,
        PruneConfig::off(),
    );
    assert_sessions_agree(&s, &cold, "post-rebuild");
}

/// A delta that flips a mapper timeout gate must fall back to a rebuild
/// (the fast tier refuses to change shape) and still answer cold.
#[test]
fn gate_flip_falls_back_and_stays_exact() {
    let platform = Platform::aws_lambda();
    let mut job = JobSpec::uniform("gate-flip", 8, 4.0, base_profile(0.4));
    let catalog = PriceCatalog::aws_2020();
    let space = |j: &JobSpec| ConfigSpace::with_tiers(j, &platform, &[128, 512, 1792, 3008]);
    let mut s = PlannerSession::new(
        &job,
        platform.clone(),
        catalog,
        space(&job),
        SolverStrategy::ExactCsp,
        PruneConfig::off(),
    );
    // A 100x mapper slowdown pushes low tiers past the timeout: the
    // feasible set shrinks, so the patch must refuse.
    job.profile.map_secs_per_mb_128 *= 100.0;
    let sp = space(&job);
    let outcome = s.apply_delta(&job, &platform, &catalog, &sp);
    assert_eq!(outcome, ReplanOutcome::Rebuilt, "gate flip must rebuild");
    let cold = PlannerSession::new(
        &job,
        platform.clone(),
        catalog,
        sp,
        SolverStrategy::ExactCsp,
        PruneConfig::off(),
    );
    assert_sessions_agree(&s, &cold, "gate flip");
}
