//! Cross-crate planner properties: optimality against brute force, and
//! the monotonicity a correct constrained optimizer must exhibit.

use astra::core::{Astra, ConfigSpace, Objective, Strategy as SolverStrategy};
use astra::model::{evaluate, JobSpec, Platform, WorkloadProfile};
use astra::pricing::{Money, PriceCatalog};
use proptest::prelude::*;

fn planner(platform: &Platform, strategy: SolverStrategy) -> Astra {
    Astra::new(platform.clone(), PriceCatalog::aws_2020(), strategy)
}

/// A small randomized job family for property tests.
fn arb_job() -> impl proptest::strategy::Strategy<Value = JobSpec> + Clone {
    (
        2usize..12,
        0.5f64..20.0,
        0.2f64..1.5,
        0.05f64..1.0,
        0.3f64..1.0,
    )
        .prop_map(|(n, size_mb, map_u, alpha, beta)| {
            let profile = WorkloadProfile {
                name: "prop".to_string(),
                map_secs_per_mb_128: map_u,
                reduce_secs_per_mb_128: map_u * 0.7,
                coord_secs_per_mb_128: 0.002,
                shuffle_ratio: alpha,
                reduce_ratio: beta,
                state_object_mb: 0.5,
                single_pass_reduce: false,
            };
            JobSpec::uniform("prop", n, size_mb, profile)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The DAG solver's budget-constrained optimum equals brute force
    /// over the same (reduced) space.
    #[test]
    fn dag_solver_is_optimal_for_min_time(job in arb_job(), frac in 0.1f64..0.95) {
        let platform = Platform::aws_lambda();
        let space = ConfigSpace::with_tiers(&job, &platform, &[128, 768, 1792]);
        let astra = planner(&platform, SolverStrategy::ExactCsp);
        let cheapest = astra.plan_with_space(&job, Objective::cheapest(), &space).unwrap();
        let fastest = astra.plan_with_space(&job, Objective::fastest(), &space).unwrap();
        let lo = cheapest.predicted_cost().nanos();
        let hi = fastest.predicted_cost().nanos();
        let budget = Money::from_nanos(lo + ((hi - lo) as f64 * frac) as i128);
        let objective = Objective::MinimizeTime { budget };

        let dag_plan = astra.plan_with_space(&job, objective, &space).unwrap();
        let brute = planner(&platform, SolverStrategy::Exhaustive)
            .plan_with_space(&job, objective, &space)
            .unwrap();
        prop_assert!(
            (dag_plan.predicted_jct_s() - brute.predicted_jct_s()).abs() < 1e-9,
            "dag {} vs brute {}",
            dag_plan.predicted_jct_s(),
            brute.predicted_jct_s()
        );
        // Constraint honoured (modulo the solver's nano-dollar slack).
        prop_assert!(dag_plan.predicted_cost() <= budget + Money::from_nanos(100));
    }

    /// Dual direction: cost minimization under a deadline is optimal too.
    #[test]
    fn dag_solver_is_optimal_for_min_cost(job in arb_job(), slack in 1.05f64..8.0) {
        let platform = Platform::aws_lambda();
        let space = ConfigSpace::with_tiers(&job, &platform, &[128, 768, 1792]);
        let astra = planner(&platform, SolverStrategy::ExactCsp);
        let fastest = astra.plan_with_space(&job, Objective::fastest(), &space).unwrap();
        let deadline = fastest.predicted_jct_s() * slack;
        let objective = Objective::min_cost_with_deadline_s(deadline);

        let dag_plan = astra.plan_with_space(&job, objective, &space).unwrap();
        let brute = planner(&platform, SolverStrategy::Exhaustive)
            .plan_with_space(&job, objective, &space)
            .unwrap();
        prop_assert_eq!(dag_plan.predicted_cost(), brute.predicted_cost());
        prop_assert!(dag_plan.predicted_jct_s() <= deadline * (1.0 + 1e-9) + 1e-9);
    }

    /// More budget can never hurt: predicted JCT is non-increasing in the
    /// budget.
    #[test]
    fn jct_is_monotone_in_budget(job in arb_job()) {
        let platform = Platform::aws_lambda();
        let space = ConfigSpace::with_tiers(&job, &platform, &[128, 512, 1792]);
        let astra = planner(&platform, SolverStrategy::ExactCsp);
        let cheapest = astra.plan_with_space(&job, Objective::cheapest(), &space).unwrap();
        let fastest = astra.plan_with_space(&job, Objective::fastest(), &space).unwrap();
        let lo = cheapest.predicted_cost().nanos();
        let hi = fastest.predicted_cost().nanos().max(lo + 1);
        let mut last = f64::INFINITY;
        for step in 0..6 {
            let budget = Money::from_nanos(lo + (hi - lo) * step / 5);
            let plan = astra
                .plan_with_space(&job, Objective::MinimizeTime { budget }, &space)
                .unwrap();
            prop_assert!(
                plan.predicted_jct_s() <= last + 1e-9,
                "budget up, jct {} -> {}",
                last,
                plan.predicted_jct_s()
            );
            last = plan.predicted_jct_s();
        }
    }

    /// Looser deadlines can never cost more.
    #[test]
    fn cost_is_monotone_in_deadline(job in arb_job()) {
        let platform = Platform::aws_lambda();
        let space = ConfigSpace::with_tiers(&job, &platform, &[128, 512, 1792]);
        let astra = planner(&platform, SolverStrategy::ExactCsp);
        let fastest = astra.plan_with_space(&job, Objective::fastest(), &space).unwrap();
        let base = fastest.predicted_jct_s();
        let mut last = Money::from_nanos(i128::MAX);
        for mult in [1.0, 1.5, 2.5, 5.0, 20.0] {
            let plan = astra
                .plan_with_space(&job, Objective::min_cost_with_deadline_s(base * mult), &space)
                .unwrap();
            prop_assert!(plan.predicted_cost() <= last);
            last = plan.predicted_cost();
        }
    }

    /// The memoized model cache is transparent: for every configuration
    /// in the space, cached evaluation agrees with the uncached model to
    /// the last nano-dollar (and the last JCT bit), including which
    /// configurations are infeasible and why.
    #[test]
    fn model_cache_is_transparent(job in arb_job()) {
        let platform = Platform::aws_lambda();
        let space = ConfigSpace::with_tiers(&job, &platform, &[128, 768, 1792]);
        let catalog = PriceCatalog::aws_2020();
        let cache = astra::core::ModelCache::new(&job, &platform);
        for config in space.iter_configs(&job) {
            let cached = cache.evaluate(&config, &catalog);
            let uncached = evaluate(&job, &platform, &config, &catalog);
            match (cached, uncached) {
                (Ok(c), Ok(u)) => {
                    prop_assert_eq!(c.total_cost(), u.total_cost(), "cost for {:?}", config);
                    prop_assert_eq!(
                        c.jct_s().to_bits(),
                        u.jct_s().to_bits(),
                        "jct {} vs {} for {:?}",
                        c.jct_s(),
                        u.jct_s(),
                        config
                    );
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (c, u) => prop_assert!(false, "feasibility disagrees for {:?}: cached {:?}, uncached {:?}", config, c, u),
            }
        }
    }

    /// Whatever the planner returns must re-evaluate to the same numbers
    /// through the public model API (no internal inconsistencies).
    #[test]
    fn plans_reevaluate_consistently(job in arb_job()) {
        let platform = Platform::aws_lambda();
        let space = ConfigSpace::with_tiers(&job, &platform, &[128, 1792]);
        let astra = planner(&platform, SolverStrategy::ExactCsp);
        let plan = astra.plan_with_space(&job, Objective::fastest(), &space).unwrap();
        let astra_core::plan::ReduceSpec::PerReducer(k_r) = plan.spec.reduce_spec else {
            panic!("planner emits k_R plans");
        };
        let config = astra::model::JobConfig {
            mapper_mem_mb: plan.spec.mapper_mem_mb,
            coordinator_mem_mb: plan.spec.coordinator_mem_mb,
            reducer_mem_mb: plan.spec.reducer_mem_mb,
            objects_per_mapper: plan.spec.objects_per_mapper,
            objects_per_reducer: k_r,
        };
        let ev = evaluate(&job, &platform, &config, &PriceCatalog::aws_2020()).unwrap();
        prop_assert_eq!(ev.total_cost(), plan.predicted_cost());
        prop_assert!((ev.jct_s() - plan.predicted_jct_s()).abs() < 1e-12);
    }
}

/// Algorithm 1, when it succeeds, returns a feasible plan that is never
/// better than the exact optimum.
#[test]
fn algorithm1_is_sound_when_it_succeeds() {
    let platform = Platform::aws_lambda();
    let job = JobSpec::uniform("a1", 8, 4.0, WorkloadProfile::uniform_test());
    let space = ConfigSpace::with_tiers(&job, &platform, &[128, 768, 1792]);
    let exact_astra = planner(&platform, SolverStrategy::ExactCsp);
    let alg1_astra = planner(&platform, SolverStrategy::Algorithm1);
    let cheapest = exact_astra
        .plan_with_space(&job, Objective::cheapest(), &space)
        .unwrap();
    let fastest = exact_astra
        .plan_with_space(&job, Objective::fastest(), &space)
        .unwrap();
    let lo = cheapest.predicted_cost().nanos();
    let hi = fastest.predicted_cost().nanos();
    for step in 1..10 {
        let budget = Money::from_nanos(lo + (hi - lo) * step / 10);
        let objective = Objective::MinimizeTime { budget };
        let exact = exact_astra.plan_with_space(&job, objective, &space).unwrap();
        if let Ok(a) = alg1_astra.plan_with_space(&job, objective, &space) {
            assert!(a.predicted_jct_s() >= exact.predicted_jct_s() - 1e-9);
            assert!(a.predicted_cost() <= budget + Money::from_nanos(100));
        }
    }
}
