//! Admission-control properties: the envelope is never over-committed
//! (the sum of admitted claims stays within budget, concurrency within
//! slots), and no admissible job is ever starved — at the controller,
//! the scheduler, and the full service level.

mod service_support;

use astra::pricing::Money;
use astra::service::{
    Admission, AdmissionController, Envelope, JobStatus, ServiceConfig, ServiceDaemon,
};
use astra::service::scheduler::Scheduler;
use proptest::prelude::*;
use service_support::mixed_requests;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

fn dollars(d: f64) -> Money {
    Money::from_dollars_f64(d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Driving a random claim sequence through the controller with a
    /// FIFO release discipline: occupancy never exceeds the envelope at
    /// any step, infeasible claims are rejected (never deferred), and
    /// every feasible claim is eventually admitted.
    #[test]
    fn controller_never_over_admits_and_admits_every_feasible_claim(
        claims in proptest::collection::vec(0.01f64..2.0, 1..24),
        slots in 1usize..5,
        budget in 0.5f64..3.0,
    ) {
        let envelope = Envelope { max_in_flight: slots, budget: dollars(budget) };
        let mut controller = AdmissionController::new(envelope);
        let mut in_flight: VecDeque<Money> = VecDeque::new();
        let mut admitted = 0usize;
        let feasible = claims.iter().filter(|&&c| dollars(c) <= envelope.budget).count();

        for &claim_dollars in &claims {
            let claim = dollars(claim_dollars);
            loop {
                match controller.admit(claim) {
                    Admission::Admit => {
                        in_flight.push_back(claim);
                        admitted += 1;
                        break;
                    }
                    Admission::Defer => {
                        // FIFO release: the oldest admitted job finishes.
                        let done = in_flight.pop_front().expect("deferred with empty envelope");
                        controller.release(done);
                    }
                    Admission::Reject(reason) => {
                        prop_assert!(
                            claim > envelope.budget,
                            "feasible claim {claim} rejected: {reason}"
                        );
                        break;
                    }
                }
                // The envelope invariants hold after every step.
                prop_assert!(controller.in_flight() <= slots);
                prop_assert!(controller.claimed() <= envelope.budget);
            }
            prop_assert!(controller.in_flight() <= slots, "slots over-committed");
            prop_assert!(controller.claimed() <= envelope.budget, "budget over-committed");
            let held: i128 = in_flight.iter().map(|m| m.nanos()).sum();
            prop_assert_eq!(controller.claimed(), Money::from_nanos(held), "claim ledger drifted");
        }
        prop_assert_eq!(admitted, feasible, "an admissible claim was starved");
        for done in in_flight {
            controller.release(done);
        }
        prop_assert_eq!(controller.in_flight(), 0);
        prop_assert_eq!(controller.claimed(), Money::ZERO);
    }

    /// The threaded scheduler path: with a worker pool draining a tight
    /// envelope, every feasible submission is dispatched exactly once
    /// and every infeasible one is rejected at submit time.
    #[test]
    fn scheduler_dispatches_every_feasible_job(
        claims in proptest::collection::vec(0.01f64..2.0, 1..16),
        slots in 1usize..4,
        budget in 0.5f64..3.0,
    ) {
        let envelope = Envelope { max_in_flight: slots, budget: dollars(budget) };
        let sched = Arc::new(Scheduler::new(
            claims.len(),
            envelope,
            astra::service::FairnessConfig::default(),
            astra::service::OverloadConfig::disabled(),
            astra::telemetry::Telemetry::disabled(),
        ));
        let mut expected: Vec<u64> = Vec::new();
        for (id, &claim) in claims.iter().enumerate() {
            // Spread the mix over two tenants so the DRR lanes are
            // exercised, not just the single-lane degenerate case.
            let tenant = if id % 2 == 0 { "even" } else { "odd" };
            match sched.submit(id as u64, tenant, dollars(claim), false) {
                Ok(()) => expected.push(id as u64),
                Err(reason) => prop_assert!(
                    dollars(claim) > envelope.budget,
                    "feasible job {id} rejected: {reason:?}"
                ),
            }
        }
        sched.close();

        let dispatched = Arc::new(Mutex::new(Vec::new()));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let sched = Arc::clone(&sched);
                let dispatched = Arc::clone(&dispatched);
                std::thread::spawn(move || {
                    while let Some(job) = sched.next() {
                        dispatched.lock().unwrap().push(job.id);
                        sched.complete(&job);
                    }
                })
            })
            .collect();
        for worker in workers {
            worker.join().unwrap();
        }

        let mut dispatched = Arc::try_unwrap(dispatched).unwrap().into_inner().unwrap();
        dispatched.sort_unstable();
        prop_assert_eq!(dispatched, expected, "dispatch set != feasible submissions");
        prop_assert_eq!(sched.in_flight(), 0, "claims leaked");
    }
}

/// Full-service check: an envelope budget strictly between the smallest
/// and largest planned cost splits the mix deterministically — every
/// job whose claim fits is `Done`, every oversized one is `Rejected`
/// with the budget named, and nothing is left non-terminal.
#[test]
fn service_rejects_oversized_claims_and_completes_the_rest() {
    let requests = mixed_requests(8);
    let claims: Vec<Money> = requests
        .iter()
        .map(|r| service_support::reference(r).plan.predicted_cost())
        .collect();
    let (min_claim, max_claim) = (
        *claims.iter().min().unwrap(),
        *claims.iter().max().unwrap(),
    );
    assert!(min_claim < max_claim, "mix too uniform to split");
    let budget = Money::from_nanos((min_claim.nanos() + max_claim.nanos()) / 2);

    let daemon = ServiceDaemon::start(ServiceConfig::default().with_workers(3).with_envelope(
        Envelope {
            max_in_flight: 2,
            budget,
        },
    ));
    let handle = daemon.handle();
    let ids: Vec<_> = requests.iter().map(|r| handle.submit(r.clone())).collect();
    for (&id, claim) in ids.iter().zip(&claims) {
        let snap = handle.await_done(id).unwrap();
        snap.check_history().unwrap();
        if *claim > budget {
            assert_eq!(snap.status, JobStatus::Rejected, "oversized job {id}");
            assert!(snap.reason.as_ref().unwrap().contains("admission budget"));
        } else {
            assert_eq!(snap.status, JobStatus::Done, "admissible job {id} starved");
        }
    }
    assert_eq!(handle.in_flight(), 0, "claims leaked after drain");
}
