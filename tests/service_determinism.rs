//! Service determinism: a fixed submission order with fixed seeds must
//! produce bit-identical per-job results at any `RAYON_NUM_THREADS`,
//! any worker-pool size, and under admission deferral — the daemon may
//! change *when* a job runs, never *what* it computes. The reference is
//! the same jobs run serially through the plain `Astra` library API.

mod service_support;

use astra::pricing::Money;
use astra::service::{Envelope, JobStatus, ServiceConfig, ServiceDaemon};
use service_support::{assert_matches_reference, mixed_requests, reference, Reference};

/// The thread counts swept in every test. The rayon shim re-reads
/// `RAYON_NUM_THREADS` on each parallel call, so sweeping it inside one
/// process is sound.
const THREADS: [&str; 3] = ["1", "2", "8"];
const WORKER_POOLS: [usize; 3] = [1, 2, 8];

fn run_mix_through_daemon(config: ServiceConfig, requests: &[astra::service::JobRequest]) -> Vec<astra::service::JobSnapshot> {
    let daemon = ServiceDaemon::start(config);
    let handle = daemon.handle();
    let ids: Vec<_> = requests.iter().map(|r| handle.submit(r.clone())).collect();
    ids.iter().map(|&id| handle.await_done(id).unwrap()).collect()
}

#[test]
fn results_are_bit_identical_across_threads_and_worker_pools() {
    let requests = mixed_requests(8);
    let references: Vec<Reference> = requests.iter().map(reference).collect();

    for workers in WORKER_POOLS {
        for threads in THREADS {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let snapshots = run_mix_through_daemon(
                ServiceConfig::default().with_workers(workers),
                &requests,
            );
            for (snap, reference) in snapshots.iter().zip(&references) {
                snap.check_history().unwrap();
                assert_matches_reference(
                    snap,
                    reference,
                    &format!("{workers} workers @{threads} threads"),
                );
            }
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

#[test]
fn admission_deferral_changes_latency_not_results() {
    let requests = mixed_requests(6);
    let references: Vec<Reference> = requests.iter().map(reference).collect();

    // A one-slot envelope forces every job to wait for its predecessor:
    // maximal deferral pressure, identical results.
    let serialized = ServiceConfig::default()
        .with_workers(4)
        .with_envelope(Envelope {
            max_in_flight: 1,
            budget: Money::from_dollars_f64(1_000_000.0),
        });
    for (snap, reference) in run_mix_through_daemon(serialized, &requests)
        .iter()
        .zip(&references)
    {
        assert_matches_reference(snap, reference, "max_in_flight=1");
    }

    // A budget just big enough for the most expensive single plan also
    // defers aggressively without rejecting anything.
    let max_claim = references
        .iter()
        .map(|r| r.plan.predicted_cost())
        .max()
        .unwrap();
    let tight_budget = ServiceConfig::default()
        .with_workers(4)
        .with_envelope(Envelope {
            max_in_flight: 64,
            budget: max_claim,
        });
    for (snap, reference) in run_mix_through_daemon(tight_budget, &requests)
        .iter()
        .zip(&references)
    {
        assert_matches_reference(snap, reference, "budget=max_claim");
    }
}

#[test]
fn repeated_runs_of_the_same_mix_are_identical() {
    let requests = mixed_requests(6);
    let first = run_mix_through_daemon(ServiceConfig::default().with_workers(3), &requests);
    let second = run_mix_through_daemon(ServiceConfig::default().with_workers(3), &requests);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.status, JobStatus::Done);
        assert_eq!(a.plan.as_ref().unwrap().spec, b.plan.as_ref().unwrap().spec);
        assert_eq!(a.plan.as_ref().unwrap().predicted_cost, b.plan.as_ref().unwrap().predicted_cost);
        match (&a.sim, &b.sim) {
            (Some(sa), Some(sb)) => {
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&sa.jct_s), bits(&sb.jct_s));
                assert_eq!(sa.cost, sb.cost);
                assert_eq!(sa.events, sb.events);
            }
            (None, None) => {}
            other => panic!("sim presence diverged: {other:?}"),
        }
    }
}
