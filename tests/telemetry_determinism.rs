//! Telemetry must be purely observational: attaching a recorder — even
//! the full Chrome-trace sink — may never change a plan, a report, or a
//! single float, at any thread count. These tests pin that contract,
//! plus the structural guarantees the trace itself makes (spans nest
//! along the spawn tree; the exclusive phase partition sums to the JCT).

use std::sync::{Arc, Mutex};

use astra::core::Objective;
use astra::faas::{SimConfig, SimReport};
use astra::mapreduce::simulate;
use astra::model::Platform;
use astra::telemetry::{self, sinks, ChromeTraceRecorder, Telemetry};
use astra::workloads::WorkloadSpec;
use astra_experiments::harness;

/// The thread counts swept. The rayon shim re-reads `RAYON_NUM_THREADS`
/// on each parallel call, so sweeping it inside one process is sound.
const THREADS: [&str; 3] = ["1", "2", "8"];

/// Tests here install the process-global telemetry handle; serialize
/// them so one test's recorder never captures another's spans.
static GLOBAL_TELEMETRY: Mutex<()> = Mutex::new(());

fn assert_reports_identical(a: &SimReport, b: &SimReport, context: &str) {
    assert_eq!(a.makespan, b.makespan, "makespan ({context})");
    assert_eq!(a.total_cost(), b.total_cost(), "cost ({context})");
    assert_eq!(a.invoices, b.invoices, "invoices ({context})");
    assert_eq!(a.events, b.events, "event count ({context})");
    assert_eq!(a.ledger.gets, b.ledger.gets, "gets ({context})");
    assert_eq!(a.ledger.puts, b.ledger.puts, "puts ({context})");
}

/// The acceptance bar: planner output and simulator reports are
/// bit-identical with telemetry disabled versus a Chrome-trace recorder
/// enabled, at 1, 2 and 8 threads.
#[test]
fn chrome_trace_recording_changes_no_output_at_any_thread_count() {
    let _guard = GLOBAL_TELEMETRY.lock().unwrap();
    let job = WorkloadSpec::wordcount_gb(1).into_job();

    // Baseline: telemetry disabled (the default global).
    telemetry::install_global(Telemetry::disabled());
    let base_plan = harness::astra().plan(&job, Objective::fastest()).unwrap();
    let base_report = simulate(
        &job,
        &base_plan,
        SimConfig::deterministic(Platform::aws_lambda()).with_noise(0.2, 11),
    )
    .unwrap();

    for threads in THREADS {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let rec = Arc::new(ChromeTraceRecorder::new());
        telemetry::install_global(Telemetry::new(rec.clone()));
        // Planner and SimConfig snapshot the global at construction.
        let plan = harness::astra().plan(&job, Objective::fastest()).unwrap();
        let report = simulate(
            &job,
            &plan,
            SimConfig::deterministic(Platform::aws_lambda()).with_noise(0.2, 11),
        )
        .unwrap();
        telemetry::install_global(Telemetry::disabled());

        assert_eq!(plan, base_plan, "plan changed under telemetry @{threads}");
        assert_reports_identical(&report, &base_report, &format!("@{threads} threads"));
        assert!(
            !rec.inner().spans().is_empty(),
            "the recorder must actually have captured spans @{threads}"
        );
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

/// Invocation spans must nest along the spawn tree, and every phase
/// span must hang off its own actor's invocation span.
#[test]
fn in_memory_span_nesting_matches_the_spawn_tree() {
    let job = WorkloadSpec::wordcount_gb(1).into_job();
    let plan = harness::astra().plan(&job, Objective::cheapest()).unwrap();
    let (tel, rec) = sinks::in_memory();
    let config = SimConfig::deterministic(Platform::aws_lambda()).with_telemetry(tel);
    simulate(&job, &plan, config).unwrap();

    let spans = rec.spans();
    let invocations: Vec<_> = spans.iter().filter(|s| s.kind == "invocation").collect();
    assert!(invocations.len() > 2, "mappers + coordinator at least");

    // Exactly one root: the client driver.
    let roots: Vec<_> = invocations.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "one spawn-tree root");
    assert_eq!(&*roots[0].track, "client-driver");
    let root_id = roots[0].id;

    // Every other invocation's parent is some invocation span, and the
    // first-wave workers (mappers) hang directly off the driver.
    for inv in &invocations {
        if let Some(p) = inv.parent {
            assert!(
                invocations.iter().any(|other| other.id == p),
                "{}: parent {p} is not an invocation span",
                inv.track
            );
        }
        if inv.track.starts_with("mapper-") {
            assert_eq!(inv.parent, Some(root_id), "{} not under driver", inv.track);
        }
    }

    // Phase spans (cold_start/get/compute/put/queued) nest under their
    // own actor's invocation span — same track, matching id.
    for span in spans.iter().filter(|s| s.kind != "invocation") {
        let Some(p) = span.parent else {
            panic!("phase span {}/{} has no parent", span.track, span.name)
        };
        let owner = invocations
            .iter()
            .find(|inv| inv.id == p)
            .unwrap_or_else(|| panic!("phase span {}/{} orphaned", span.track, span.name));
        assert_eq!(owner.track, span.track, "phase span crossed actors");
        assert!(
            owner.sim_start_us <= span.sim_start_us && span.sim_end_us <= owner.sim_end_us,
            "{}/{} leaks outside its invocation",
            span.track,
            span.name
        );
    }
}

/// The exclusive phase partition of the trace must account for the
/// whole makespan: totals sum to the JCT (the acceptance criterion
/// allows 1 ms; the construction is exact to the microsecond).
#[test]
fn phase_breakdown_sums_to_jct() {
    for spec in [WorkloadSpec::wordcount_gb(1), WorkloadSpec::QueryUservisits] {
        let job = spec.into_job();
        let plan = harness::astra().plan(&job, Objective::fastest()).unwrap();
        let report = simulate(
            &job,
            &plan,
            SimConfig::deterministic(Platform::aws_lambda()).with_noise(0.1, 7),
        )
        .unwrap();
        let total = report.phase_breakdown().total();
        let diff_us = total.as_micros().abs_diff(report.makespan.as_micros());
        assert!(
            diff_us == 0,
            "{}: phases sum to {total:?}, makespan {:?} (off by {diff_us} µs)",
            spec.label(),
            report.makespan
        );
    }
}

/// The Chrome-trace export is loadable JSON with the nesting metadata
/// a trace viewer needs (and that OBSERVABILITY.md documents).
#[test]
fn chrome_trace_export_is_structurally_sound() {
    let job = WorkloadSpec::wordcount_gb(1).into_job();
    let plan = harness::astra().plan(&job, Objective::fastest()).unwrap();
    let (tel, rec) = sinks::chrome_trace();
    let config = SimConfig::deterministic(Platform::aws_lambda()).with_telemetry(tel);
    simulate(&job, &plan, config).unwrap();

    let json = rec.to_json().to_string();
    assert!(json.starts_with('{') && json.ends_with('}'));
    for needle in [
        "\"traceEvents\"",
        "\"displayTimeUnit\"",
        "\"invocation\"",
        "\"cold_start\"",
        "\"compute\"",
        "\"otherData\"",
        "engine.events",
    ] {
        assert!(json.contains(needle), "trace JSON missing {needle}");
    }
    // A mapper's phase spans reference their invocation span id in args.
    let spans = rec.inner().spans();
    let mapper_inv = spans
        .iter()
        .find(|s| s.kind == "invocation" && s.track.starts_with("mapper-"))
        .expect("a mapper invocation span");
    assert!(
        json.contains(&format!("\"parent\": {}", mapper_inv.id))
            || json.contains(&format!("\"parent\":{}", mapper_inv.id)),
        "no child references mapper invocation {}",
        mapper_inv.id
    );
}
