//! The chaos suite: deterministic fault injection against the full
//! service stack. Every injected fault — worker panics, simulated
//! process crashes, cache-build failures, connection resets, short
//! writes, slow-loris stalls — must leave the service in a legal
//! state: every job reaches a legal terminal state (or is recovered to
//! one by a journal-replaying restart), claims are always released,
//! and every job the faults did not kill stays bit-identical to the
//! serial library reference.
//!
//! Because [`FaultPlan`] verdicts are pure functions of `(plan, site,
//! key)`, each test *predicts* exactly which jobs or connections a
//! seeded plan will fault and asserts the outcome job by job — there
//! is no "run it a few times and hope" here. The seeds exercised in CI
//! are the `CRASH_SEEDS` matrix below; the thread counts mirror
//! `tests/service_determinism.rs`.

mod service_support;

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use astra::core::Objective;
use astra::pricing::Money;
use astra::service::net::codes;
use astra::service::{
    BackoffPolicy, Envelope, FaultAction, FaultPlan, FaultSite, JobId, JobRequest, JobStatus,
    Journal, NetClient, NetConfig, NetServer, OverloadConfig, ServiceConfig, ServiceDaemon,
    SimOptions,
};
use astra::telemetry::{InMemoryRecorder, Telemetry};
use astra::workloads::WorkloadSpec;
use serde_json::Value;
use service_support::{assert_matches_reference, mixed_requests, reference};

/// The fixed chaos seed matrix CI runs; each seed drives an independent
/// crash-recovery case (victim selection differs per seed).
const CRASH_SEEDS: [u64; 3] = [11, 23, 47];

/// Thread counts the crash-recovery invariant is swept across (the
/// rayon shim re-reads the env var per parallel call).
const THREADS: [&str; 3] = ["1", "2", "8"];

fn quiet_config() -> ServiceConfig {
    ServiceConfig::default().with_telemetry(Telemetry::disabled())
}

/// A unique scratch path for one test's journal; removed up front so a
/// crashed previous run cannot leak state in.
fn scratch_journal(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "astra-chaos-{}-{tag}.journal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// Poll until `done()` or panic after a generous deadline.
fn wait_for(what: &str, done: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

// -------------------------------------------------------- panic faults

/// What a fault plan does to job `id`, walking the injection sites in
/// the exact order the daemon consults them. Pure, so the test can
/// predict every job's terminal state before submitting anything.
fn predicted_status(plan: &FaultPlan, id: JobId, replications: u32) -> JobStatus {
    if plan.fires(FaultSite::CacheBuild, id) {
        // Fires at admission planning: rejected before it ever queues.
        JobStatus::Rejected
    } else if plan.fires(FaultSite::WorkerPlan, id)
        || (replications > 0 && plan.fires(FaultSite::WorkerSim, id))
        || plan.fires(FaultSite::WorkerFinish, id)
    {
        JobStatus::Failed
    } else {
        JobStatus::Done
    }
}

/// Every worker panic and cache-build failure must land its victim in a
/// legal terminal state with an "injected fault" reason, release its
/// claim, and leave every non-victim bit-identical to the library.
#[test]
fn injected_panics_fail_only_their_victims() {
    let requests = mixed_requests(12);
    let n = requests.len() as JobId;

    // Scan (purely) for a seed whose victim mix exercises every
    // category: at least one admission rejection, one worker panic, and
    // a healthy majority of untouched jobs.
    let plan = (0..10_000u64)
        .map(|seed| {
            FaultPlan::seeded(seed)
                .with_fault(FaultSite::CacheBuild, 6, FaultAction::Error)
                .with_fault(FaultSite::WorkerPlan, 6, FaultAction::Panic)
                .with_fault(FaultSite::WorkerSim, 6, FaultAction::Panic)
                .with_fault(FaultSite::WorkerFinish, 6, FaultAction::Panic)
        })
        .find(|plan| {
            let statuses: Vec<JobStatus> = (1..=n)
                .map(|id| {
                    predicted_status(plan, id, requests[(id - 1) as usize].sim.replications)
                })
                .collect();
            let count = |s: JobStatus| statuses.iter().filter(|&&got| got == s).count();
            count(JobStatus::Rejected) >= 1
                && count(JobStatus::Failed) >= 2
                && count(JobStatus::Done) >= 4
        })
        .expect("some seed under 10k yields a mixed victim set");

    let recorder = Arc::new(InMemoryRecorder::new());
    let daemon = ServiceDaemon::start(
        quiet_config()
            .with_workers(2)
            .with_faults(plan.clone())
            .with_telemetry(Telemetry::new(recorder.clone())),
    );
    let handle = daemon.handle();
    let ids: Vec<JobId> = requests.iter().map(|r| handle.submit(r.clone())).collect();

    let mut panic_victims = 0u64;
    for (&id, request) in ids.iter().zip(&requests) {
        let snap = handle.await_done(id).expect("submitted id");
        snap.check_history().unwrap();
        let expected = predicted_status(&plan, id, request.sim.replications);
        assert_eq!(snap.status, expected, "job {id}: {:?}", snap.reason);
        match expected {
            JobStatus::Done => assert_matches_reference(&snap, &reference(request), "chaos"),
            JobStatus::Rejected => {
                let reason = snap.reason.as_ref().unwrap();
                assert!(reason.contains("injected fault"), "job {id}: {reason}");
                assert!(reason.contains("cache-build"), "job {id}: {reason}");
            }
            JobStatus::Failed => {
                panic_victims += 1;
                let reason = snap.reason.as_ref().unwrap();
                assert!(reason.contains("injected fault"), "job {id}: {reason}");
                assert!(reason.contains("worker-"), "job {id}: {reason}");
            }
            other => panic!("unexpected prediction {other}"),
        }
    }

    // Claims always released: nothing queued, nothing in flight. (The
    // worker releases its claim just after the terminal transition that
    // wakes `await_done`, so poll rather than race it.)
    wait_for("claims to drain", || {
        handle.queue_len() == 0 && handle.in_flight() == 0
    });
    assert_eq!(recorder.counter_value("service.worker.panics"), panic_victims);
    assert!(recorder.counter_value("service.faults.injected") >= panic_victims);
    drop(daemon);
}

// ----------------------------------------------------- crash recovery

/// A seed under which the crash rule fires for job `n` and *only* job
/// `n` among ids `1..=n` — so every other job is fully submitted before
/// the "process" dies. Pure scan over the same verdict function the
/// daemon uses.
fn sole_victim_seed(salt: u64, n: JobId) -> u64 {
    (0..100_000u64)
        .map(|k| salt.wrapping_mul(1_000_003).wrapping_add(k))
        .find(|&seed| {
            let plan = FaultPlan::seeded(seed).with_fault(
                FaultSite::WorkerFinish,
                n,
                FaultAction::Crash,
            );
            (1..=n).filter(|&id| plan.fires(FaultSite::WorkerFinish, id)).eq([n])
        })
        .expect("a sole-victim seed exists in the scan range")
}

/// The tentpole invariant, per (seed, thread-count) cell: run a
/// journaled daemon into an injected crash, abandon it exactly as a
/// dead process would (claims leaked, queue frozen), restart on the
/// same journal with faults disabled, and require that every job —
/// recovered verbatim or re-run — ends `Done`, bit-identical to the
/// serial library reference, with no claim leaked into the new
/// generation and the journal replaying to the same terminal set.
fn crash_and_recover(seed: u64, threads: &str) {
    std::env::set_var("RAYON_NUM_THREADS", threads);
    let requests = mixed_requests(8);
    let references: Vec<_> = requests.iter().map(reference).collect();
    let n = requests.len() as JobId;
    let crash_seed = sole_victim_seed(seed, n);
    let faults = FaultPlan::seeded(crash_seed).with_fault(
        FaultSite::WorkerFinish,
        n,
        FaultAction::Crash,
    );
    let journal = scratch_journal(&format!("crash-{seed}-t{threads}"));

    // Generation 1: runs until the injected crash halts it mid-fleet.
    let gen1 = ServiceDaemon::start(
        quiet_config()
            .with_workers(2)
            .with_journal_path(&journal)
            .with_faults(faults),
    );
    let handle1 = gen1.handle();
    let ids: Vec<JobId> = requests.iter().map(|r| handle1.submit(r.clone())).collect();
    assert_eq!(ids, (1..=n).collect::<Vec<_>>(), "dense ids in submit order");
    wait_for("the injected crash", || gen1.crashed());
    gen1.abandon();

    // The crash left real wreckage: the victim is non-terminal, and no
    // submission was turned away by the dying scheduler (the sole
    // victim is the last-submitted job, so admission had finished).
    let wreck = handle1.jobs();
    assert!(
        !wreck.iter().find(|s| s.id == n).unwrap().is_terminal(),
        "seed {seed}: the crash victim must be left mid-flight"
    );
    assert!(
        wreck.iter().all(|s| s.status != JobStatus::Rejected),
        "seed {seed}: a crash must never masquerade as a rejection"
    );

    // Generation 2: same journal, faults off. Terminal jobs replay
    // verbatim; mid-flight jobs re-run to the bit-identical result.
    let gen2 = ServiceDaemon::start(
        quiet_config().with_workers(2).with_journal_path(&journal),
    );
    let handle2 = gen2.handle();
    for (&id, lib) in ids.iter().zip(&references) {
        let snap = handle2.await_done(id).expect("recovered id answers");
        snap.check_history().unwrap();
        assert_matches_reference(&snap, lib, &format!("seed {seed} @{threads} threads"));
    }
    // No claim leaks into the new generation (polled: the last worker
    // releases its claim just after the transition that wakes awaits).
    wait_for("recovered claims to drain", || {
        handle2.queue_len() == 0 && handle2.in_flight() == 0
    });

    // Fresh submissions continue the recovered id sequence.
    let fresh = handle2.submit(requests[0].clone());
    assert_eq!(fresh, n + 1, "seed {seed}: id sequence must survive restart");
    assert_eq!(
        handle2.await_done(fresh).unwrap().status,
        JobStatus::Done
    );
    drop(gen2);

    // A third replay of the journal agrees with the live table: every
    // job terminal, none in flight.
    let (_, recovery) = Journal::open(&journal, Telemetry::disabled()).unwrap();
    assert_eq!(recovery.jobs.len(), n as usize + 1);
    assert_eq!(
        recovery.in_flight().count(),
        0,
        "seed {seed}: journal still holds in-flight jobs after recovery"
    );
    for job in &recovery.jobs {
        let replayed = job.terminal.as_ref().expect("all jobs terminal");
        assert_eq!(replayed.status, JobStatus::Done);
    }
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn crash_recovery_invariant_holds_across_seeds_and_thread_counts() {
    for &seed in &CRASH_SEEDS {
        for threads in THREADS {
            crash_and_recover(seed, threads);
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

/// A torn final record — the classic power-cut artifact — must be
/// truncated away on restart, with everything before it recovered
/// verbatim and the journal usable for new appends.
#[test]
fn torn_journal_tail_is_truncated_through_a_daemon_restart() {
    let journal = scratch_journal("torn-tail");
    let requests = mixed_requests(4);

    let gen1 = ServiceDaemon::start(
        quiet_config().with_workers(1).with_journal_path(&journal),
    );
    let handle1 = gen1.handle();
    let ids: Vec<JobId> = requests.iter().map(|r| handle1.submit(r.clone())).collect();
    for &id in &ids {
        assert_eq!(handle1.await_done(id).unwrap().status, JobStatus::Done);
    }
    drop(gen1);

    // Tear the tail: half a frame header plus garbage, no valid CRC.
    let clean_len = std::fs::metadata(&journal).unwrap().len();
    {
        let mut file = std::fs::OpenOptions::new().append(true).open(&journal).unwrap();
        file.write_all(&[0x99, 0x03, 0x00, 0x00, 0xde, 0xad]).unwrap();
    }
    assert!(std::fs::metadata(&journal).unwrap().len() > clean_len);

    let recorder = Arc::new(InMemoryRecorder::new());
    let gen2 = ServiceDaemon::start(
        quiet_config()
            .with_workers(1)
            .with_journal_path(&journal)
            .with_telemetry(Telemetry::new(recorder.clone())),
    );
    let handle2 = gen2.handle();
    assert_eq!(recorder.counter_value("service.journal.truncated_bytes"), 6);
    assert_eq!(
        std::fs::metadata(&journal).unwrap().len(),
        clean_len,
        "the torn tail must be truncated back to the last valid frame"
    );
    for (&id, request) in ids.iter().zip(&requests) {
        let snap = handle2.status(id).expect("recovered verbatim");
        assert_eq!(snap.status, JobStatus::Done);
        assert_matches_reference(&snap, &reference(request), "after torn tail");
    }
    // And the truncated journal accepts new work.
    let fresh = handle2.submit(requests[0].clone());
    assert_eq!(handle2.await_done(fresh).unwrap().status, JobStatus::Done);
    drop(gen2);
    let _ = std::fs::remove_file(&journal);
}

// -------------------------------------------------- overload shedding

/// Under queue pressure the service sheds non-priority submissions with
/// a retryable `OVERLOADED` answer carrying `retry_after_ms`, while
/// deadline-carrying (QoS) jobs are still accepted — in-process and
/// over TCP.
#[test]
fn overload_sheds_non_priority_submissions_with_a_retry_hint() {
    let requests = mixed_requests(1);
    let base = &requests[0];
    let mk = |name: &str, objective: Objective| {
        JobRequest::new(name, base.job.clone(), objective).with_sim(SimOptions {
            noise_cv: 0.0,
            seed: 1,
            replications: 0,
        })
    };

    let daemon = ServiceDaemon::start(
        quiet_config()
            .with_workers(1)
            .with_envelope(Envelope {
                max_in_flight: 1,
                budget: Money::from_dollars_f64(1000.0),
            })
            .with_overload(
                OverloadConfig::disabled()
                    .with_shed_queue_depth(1)
                    .with_retry_after_ms(350),
            ),
    );
    let handle = daemon.handle();
    let server = NetServer::start(
        daemon.handle(),
        "127.0.0.1:0",
        NetConfig::default(),
        Telemetry::disabled(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    // Plug the single envelope slot with a long simulation, then queue
    // one job behind it so the depth threshold (1) is reached.
    let plug = handle.submit(
        JobRequest::new("plug", WorkloadSpec::wordcount_gb(1).into_job(), Objective::cheapest())
            .with_sim(SimOptions {
                noise_cv: 0.2,
                seed: 42,
                replications: 768,
            }),
    );
    wait_for("the plug to hold the slot", || {
        handle.in_flight() == 1 && handle.queue_len() == 0
    });
    let queued = handle.submit(mk("queued", Objective::cheapest()));
    assert_eq!(
        handle.status(queued).unwrap().status,
        JobStatus::Accepted,
        "the first queued job rides under the threshold"
    );

    // Non-priority submission at depth 1: shed, retryably.
    let shed = handle.submit(mk("shed-me", Objective::cheapest()));
    let snap = handle.status(shed).unwrap();
    assert_eq!(snap.status, JobStatus::Rejected, "{:?}", snap.reason);
    assert_eq!(snap.retry_after_ms, Some(350));
    assert!(snap.reason.as_ref().unwrap().contains("overloaded"));

    // The same shed over TCP answers ok:false OVERLOADED with the hint.
    let mut client = NetClient::connect(&addr).unwrap();
    let response = client
        .submit(&mk("shed-tcp", Objective::cheapest()))
        .unwrap();
    let obj = response.as_object().unwrap();
    assert_eq!(obj.get("ok"), Some(&Value::from(false)), "{response}");
    assert_eq!(obj["error"]["code"].as_str(), Some(codes::OVERLOADED));
    assert_eq!(obj["error"]["retry_after_ms"].as_u64(), Some(350));
    assert_eq!(obj["job"]["status"].as_str(), Some("REJECTED"));
    assert_eq!(obj["job"]["retry_after_ms"].as_u64(), Some(350));

    // A deadline-class submission is never shed.
    let qos = handle.submit(mk(
        "qos",
        Objective::min_cost_with_deadline_s(3600.0),
    ));
    assert_ne!(
        handle.status(qos).unwrap().status,
        JobStatus::Rejected,
        "deadline-carrying jobs must not be shed"
    );

    // Pressure drains; accepted work all completes.
    for id in [plug, queued, qos] {
        assert_eq!(handle.await_done(id).unwrap().status, JobStatus::Done);
    }
    server.shutdown();
    daemon.shutdown();
}

// ------------------------------------------------- transport chaos

/// Slow-loris peers (selected by the `ClientStall` fault site) are cut
/// off by the idle timeout with an explicit `IDLE_TIMEOUT` line, and —
/// the point of the defense — their connection slot is actually
/// released.
#[test]
fn idle_timeout_unpins_slow_loris_connections() {
    // A pure scan for a plan that stalls some of four clients, not all.
    let plan = (0..10_000u64)
        .map(|seed| FaultPlan::seeded(seed).with_fault(FaultSite::ClientStall, 2, FaultAction::Error))
        .find(|plan| {
            let stalls: Vec<bool> =
                (0..4).map(|i| plan.fires(FaultSite::ClientStall, i)).collect();
            stalls.iter().any(|&s| s) && stalls.iter().any(|&s| !s)
        })
        .expect("a mixed stall pattern exists");

    let recorder = Arc::new(InMemoryRecorder::new());
    let daemon = ServiceDaemon::start(quiet_config().with_workers(1));
    let server = NetServer::start(
        daemon.handle(),
        "127.0.0.1:0",
        NetConfig::default()
            .with_max_connections(1)
            .with_idle_timeout_ms(150),
        Telemetry::new(recorder.clone()),
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    let mut stalled = 0u64;
    for client_index in 0..4u64 {
        if plan.fires(FaultSite::ClientStall, client_index) {
            // Slow loris: half a request line, then silence. (Poll for
            // a real hello — the previous connection's slot is reaped
            // asynchronously, and until then the first line would be a
            // CONNECTION_LIMIT refusal.)
            stalled += 1;
            let deadline = Instant::now() + Duration::from_secs(10);
            let (mut stream, mut reader) = loop {
                let stream = TcpStream::connect(&addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut hello = String::new();
                reader.read_line(&mut hello).unwrap();
                let greeted = serde_json::from_str(hello.trim_end())
                    .ok()
                    .is_some_and(|v: Value| v["op"].as_str() == Some("hello"));
                if greeted {
                    break (stream, reader);
                }
                assert!(Instant::now() < deadline, "connection slot never freed");
                std::thread::sleep(Duration::from_millis(10));
            };
            let mut line = String::new();
            stream.write_all(b"{\"op\":\"pi").unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            let notice: Value = serde_json::from_str(line.trim_end()).unwrap();
            assert_eq!(notice["ok"], Value::from(false));
            assert_eq!(notice["error"]["code"].as_str(), Some(codes::IDLE_TIMEOUT));
            // After the notice the server closes: EOF, not a hang.
            let mut rest = Vec::new();
            reader.read_to_end(&mut rest).unwrap();
            assert!(rest.is_empty(), "bytes after the idle-timeout notice");
        } else {
            // With max_connections = 1, connecting at all proves the
            // previous loris had its slot reclaimed (poll: the server
            // reaps asynchronously).
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                if let Ok(mut client) = NetClient::connect(&addr) {
                    if client.ping().is_ok() {
                        break;
                    }
                }
                assert!(Instant::now() < deadline, "connection slot never freed");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    assert!(stalled >= 1);
    assert_eq!(recorder.counter_value("service.net.idle_timeouts"), stalled);
    server.shutdown();
    daemon.shutdown();
}

/// Injected connection resets and short writes corrupt only the
/// *transport*: every submitted job still runs to the bit-identical
/// result, and a client that lost its connection reconnects under the
/// deterministic backoff policy.
#[test]
fn connection_faults_never_corrupt_results_and_backoff_reconnects() {
    const CONNS: u64 = 8;
    // A pure scan for a plan exercising all three per-connection fates.
    let plan = (0..10_000u64)
        .map(|seed| {
            FaultPlan::seeded(seed)
                .with_fault(FaultSite::ConnReset, 3, FaultAction::Error)
                .with_fault(FaultSite::ShortWrite, 3, FaultAction::Error)
        })
        .find(|plan| {
            let fate = |seq: u64| {
                if plan.fires(FaultSite::ConnReset, seq) {
                    0
                } else if plan.fires(FaultSite::ShortWrite, seq) {
                    1
                } else {
                    2
                }
            };
            // Seqs 0..CONNS cover all three fates, and the reconnect
            // probe at seq CONNS lands on a clean connection.
            (0..CONNS).map(fate).collect::<std::collections::HashSet<_>>().len() == 3
                && fate(CONNS) == 2
        })
        .expect("a plan with resets, short writes and clean connections exists");

    let requests = mixed_requests(CONNS as usize);
    let daemon = ServiceDaemon::start(quiet_config().with_workers(2));
    let handle = daemon.handle();
    let server = NetServer::start_with_faults(
        daemon.handle(),
        "127.0.0.1:0",
        NetConfig::default(),
        Telemetry::disabled(),
        plan.clone(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    // Strictly sequential connections, so connection `i` holds accept
    // sequence number `i` and the plan's per-seq verdicts apply 1:1.
    for (seq, request) in requests.iter().enumerate() {
        let mut client = NetClient::connect(&addr).unwrap();
        let result = client.submit(request);
        if plan.fires(FaultSite::ConnReset, seq as u64) {
            // The server processed the submit, then dropped the line
            // before any response byte.
            assert!(result.is_err(), "conn {seq}: reset must surface as an error");
        } else if plan.fires(FaultSite::ShortWrite, seq as u64) {
            // Half a frame is not a response: the client must treat the
            // torn read as a failure, never as data.
            assert!(result.is_err(), "conn {seq}: short write must not parse");
        } else {
            let id = result.unwrap()["id"].as_u64().expect("clean submit returns an id");
            assert_eq!(id, seq as u64 + 1);
        }
    }

    // Transport faults never reached the jobs: all eight registered,
    // all complete, all bit-identical to the serial library run.
    let ids: Vec<JobId> = handle.jobs().iter().map(|s| s.id).collect();
    assert_eq!(ids.len(), requests.len());
    for (&id, request) in ids.iter().zip(&requests) {
        let snap = handle.await_done(id).unwrap();
        assert_matches_reference(&snap, &reference(request), "under transport chaos");
    }

    // Reconnecting under backoff: fast-failing policy against a dead
    // port exhausts its attempts; the same policy against the live
    // server connects and speaks normally.
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
        // Dropping the listener leaves the port closed.
    };
    let policy = BackoffPolicy {
        attempts: 3,
        base_ms: 1,
        cap_ms: 4,
        seed: 9,
    };
    assert!(NetClient::connect_with_backoff(&dead_addr, policy).is_err());
    let mut revived = NetClient::connect_with_backoff(&addr, policy).unwrap();
    assert_eq!(revived.ping().unwrap()["ok"], Value::from(true));

    server.shutdown();
    daemon.shutdown();
}
