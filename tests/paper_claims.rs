//! The paper's headline evaluation claims, as executable assertions over
//! the full pipeline (planner → simulator → bills). These are the
//! shape-level checks EXPERIMENTS.md reports on; if a refactor breaks a
//! claim, this suite fails before the harness would show it.

use astra::baselines::{Baseline, EmrCluster, SparkVmModel};
use astra::core::{Objective, Plan};
use astra::faas::SimConfig;
use astra::mapreduce::simulate;
use astra::model::{JobSpec, Platform};
use astra::pricing::{Money, PriceCatalog};
use astra::workloads::WorkloadSpec;

fn platform() -> Platform {
    Platform::aws_lambda()
}

fn astra() -> astra::core::Astra {
    astra::core::Astra::with_defaults()
}

/// One noisy measured run (seed 42, 10 % CV, relaxed timeout).
fn measure(job: &JobSpec, plan: &Plan) -> (f64, Money) {
    let mut relaxed = platform();
    relaxed.timeout_s = f64::INFINITY;
    let report = simulate(
        job,
        plan,
        SimConfig::deterministic(relaxed).with_noise(0.10, 42),
    )
    .expect("simulates");
    (report.jct_s(), report.total_cost())
}

fn baseline_plans(job: &JobSpec) -> Vec<(&'static str, Plan)> {
    let mut relaxed = platform();
    relaxed.timeout_s = f64::INFINITY;
    Baseline::all()
        .into_iter()
        .map(|b| {
            let plan =
                Plan::evaluate(job, &relaxed, &PriceCatalog::aws_2020(), b.spec_for(job)).unwrap();
            (b.name, plan)
        })
        .collect()
}

/// Fig. 7's claim: under the budget the priciest baseline spends, Astra
/// is the fastest system on every paper workload, without exceeding the
/// budget.
#[test]
fn budget_constrained_astra_beats_every_baseline_everywhere() {
    for spec in WorkloadSpec::paper_suite() {
        let job = spec.into_job();
        let baselines = baseline_plans(&job);
        let budget = baselines
            .iter()
            .map(|(_, p)| p.predicted_cost())
            .max()
            .unwrap();
        let plan = astra()
            .plan(&job, Objective::MinimizeTime { budget })
            .unwrap();
        assert!(plan.predicted_cost() <= budget, "{}", spec.label());
        let (astra_jct, _) = measure(&job, &plan);
        for (name, bplan) in &baselines {
            let (b_jct, _) = measure(&job, bplan);
            assert!(
                astra_jct < b_jct,
                "{}: Astra {astra_jct:.1}s vs {name} {b_jct:.1}s",
                spec.label()
            );
        }
    }
}

/// Fig. 8's claim: under a 2x-fastest QoS threshold, Astra is the
/// cheapest system on every paper workload and honours the threshold in
/// prediction.
#[test]
fn qos_constrained_astra_is_cheapest_everywhere() {
    for spec in WorkloadSpec::paper_suite() {
        let job = spec.into_job();
        let fastest = astra().plan(&job, Objective::fastest()).unwrap();
        let deadline = fastest.predicted_jct_s() * 2.0;
        let plan = astra()
            .plan(&job, Objective::min_cost_with_deadline_s(deadline))
            .unwrap();
        assert!(plan.predicted_jct_s() <= deadline + 1e-9);
        let (_, astra_cost) = measure(&job, &plan);
        for (name, bplan) in &baseline_plans(&job) {
            let (_, b_cost) = measure(&job, bplan);
            assert!(
                astra_cost < b_cost,
                "{}: Astra {astra_cost} vs {name} {b_cost}",
                spec.label()
            );
        }
    }
}

/// Fig. 9's claim: Astra beats EMR on completion time *and* cost for
/// both Wordcount 20 GB and Sort 100 GB.
#[test]
fn astra_beats_emr_on_both_metrics() {
    let cluster = EmrCluster::paper_setup();
    for spec in [WorkloadSpec::wordcount_gb(20), WorkloadSpec::Sort100] {
        let job = spec.into_job();
        let budget = baseline_plans(&job)
            .iter()
            .map(|(_, p)| p.predicted_cost())
            .max()
            .unwrap();
        let plan = astra()
            .plan(&job, Objective::MinimizeTime { budget })
            .unwrap();
        let (jct, cost) = measure(&job, &plan);
        let emr = cluster.run(&job);
        assert!(jct < emr.jct_s, "{}: {jct:.1} vs EMR {:.1}", spec.label(), emr.jct_s);
        assert!(
            cost.dollars() < emr.cost.dollars(),
            "{}: {cost} vs EMR {}",
            spec.label(),
            emr.cost
        );
    }
}

/// The Discussion's claim: ≥92 % cost reduction versus VM-based vanilla
/// Spark at matched completion time.
#[test]
fn astra_undercuts_vanilla_spark_by_92_percent() {
    let spark = SparkVmModel::paper_setup();
    for spec in [WorkloadSpec::wordcount_gb(1), WorkloadSpec::QueryUservisits] {
        let job = spec.into_job();
        let plan = astra()
            .plan(&job, Objective::min_cost_with_deadline_s(spark.jct_s(&job)))
            .unwrap();
        let (_, cost) = measure(&job, &plan);
        let saving = 1.0 - cost.dollars() / spark.cost(&job).dollars();
        assert!(saving >= 0.92, "{}: saving {saving:.3}", spec.label());
    }
}

/// The Discussion's overhead claim: planning takes "a few seconds on a
/// laptop" — we require < 30 s per workload even in debug-ish CI.
#[test]
fn planner_overhead_is_a_few_seconds() {
    for spec in WorkloadSpec::paper_suite() {
        let job = spec.into_job();
        let t0 = std::time::Instant::now();
        let _ = astra().plan(&job, Objective::fastest()).unwrap();
        let elapsed = t0.elapsed();
        assert!(
            elapsed.as_secs_f64() < 30.0,
            "{}: planning took {elapsed:?}",
            spec.label()
        );
    }
}

/// Table I is reproduced exactly by the coordinator's schedule.
#[test]
fn table_one_orchestration_is_exact() {
    use astra::model::schedule::reduce_schedule;
    let cases = [
        (2usize, vec![3usize, 2, 1]),
        (3, vec![2, 1]),
        (4, vec![1]),
        (5, vec![1]),
    ];
    for (k, expected) in cases {
        let mappers = 10usize.div_ceil(k);
        let steps = reduce_schedule(&vec![1.0; mappers], k, 1.0);
        let got: Vec<usize> = steps.iter().map(|s| s.reducers()).collect();
        assert_eq!(got, expected, "k = {k}");
    }
}
