//! Parallel/serial equivalence: the rayon-parallel planner hot paths must
//! be *bit-identical* to their single-threaded references — same DAG
//! (node order, edge order, every metric), same exhaustive-sweep winner,
//! and the same plan at any thread count. This is what makes the
//! parallelism a pure wall-clock optimization rather than a semantics
//! change.

use astra::core::solver::{solve_exhaustive, solve_exhaustive_serial};
use astra::core::{Astra, ConfigSpace, Objective, PlannerDag, Strategy};
use astra::model::{JobSpec, Platform};
use astra::pricing::PriceCatalog;
use astra::workloads::WorkloadSpec;

/// The three benchmark profiles the paper evaluates.
fn jobs() -> Vec<(&'static str, JobSpec)> {
    vec![
        ("wordcount-1gb", WorkloadSpec::wordcount_gb(1).into_job()),
        ("sort-100gb", WorkloadSpec::Sort100.into_job()),
        ("query", WorkloadSpec::QueryUservisits.into_job()),
    ]
}

/// All three platform models under test.
fn platforms() -> Vec<(&'static str, Platform)> {
    vec![
        ("paper-literal", Platform::paper_literal(10.0)),
        ("aws-lambda", Platform::aws_lambda()),
        ("aws-lambda+elasticache", Platform::aws_lambda().with_elasticache()),
    ]
}

/// A reduced (but multi-tier) space: first, middle, and last valid tier.
/// Keeps the exhaustive cross-product affordable while still exercising
/// every column of the DAG.
fn reduced_space(job: &JobSpec, platform: &Platform) -> ConfigSpace {
    let full = ConfigSpace::full(job, platform);
    let tiers = &full.memory_tiers_mb;
    let picks = [tiers[0], tiers[tiers.len() / 2], tiers[tiers.len() - 1]];
    ConfigSpace::with_tiers(job, platform, &picks)
}

/// Assert two planner DAGs are bit-identical: same node choices in id
/// order, same edge endpoints and metrics in id order.
fn assert_dags_identical(a: &PlannerDag, b: &PlannerDag, context: &str) {
    let (ga, gb) = (a.graph(), b.graph());
    assert_eq!(ga.node_count(), gb.node_count(), "node count ({context})");
    assert_eq!(ga.edge_count(), gb.edge_count(), "edge count ({context})");
    assert_eq!(a.source(), b.source(), "source id ({context})");
    assert_eq!(a.sink(), b.sink(), "sink id ({context})");
    for id in ga.node_ids() {
        assert_eq!(ga.node(id), gb.node(id), "node {id:?} ({context})");
    }
    for id in ga.edge_ids() {
        assert_eq!(ga.endpoints(id), gb.endpoints(id), "endpoints {id:?} ({context})");
        let (ea, eb) = (ga.edge(id), gb.edge(id));
        assert_eq!(
            ea.time_s.to_bits(),
            eb.time_s.to_bits(),
            "edge {id:?} time {} vs {} ({context})",
            ea.time_s,
            eb.time_s
        );
        assert_eq!(ea.cost_nanos, eb.cost_nanos, "edge {id:?} cost ({context})");
    }
}

/// Install a global thread-count override. The shim accepts repeated
/// calls (last wins); with upstream rayon only the first would stick,
/// which still leaves every assertion below valid.
fn pin_threads(n: usize) {
    let _ = rayon::ThreadPoolBuilder::new().num_threads(n).build_global();
}

#[test]
fn parallel_dag_build_is_bit_identical_to_serial() {
    let catalog = PriceCatalog::aws_2020();
    for (jname, job) in jobs() {
        for (pname, platform) in platforms() {
            let space = reduced_space(&job, &platform);
            let serial = PlannerDag::build_serial(&job, &platform, &catalog, &space);
            for threads in [1, 2, 8] {
                pin_threads(threads);
                let parallel = PlannerDag::build(&job, &platform, &catalog, &space);
                assert_dags_identical(
                    &serial,
                    &parallel,
                    &format!("{jname}/{pname}/threads={threads}"),
                );
            }
        }
    }
}

#[test]
fn full_space_dag_build_is_bit_identical() {
    // One full-space (all 46 tiers) case to cover the production path.
    let job = WorkloadSpec::wordcount_gb(1).into_job();
    let platform = Platform::aws_lambda();
    let catalog = PriceCatalog::aws_2020();
    let space = ConfigSpace::full(&job, &platform);
    assert_eq!(space.memory_tiers_mb.len(), 46, "paper tier count");
    let serial = PlannerDag::build_serial(&job, &platform, &catalog, &space);
    let parallel = PlannerDag::build(&job, &platform, &catalog, &space);
    assert_dags_identical(&serial, &parallel, "wordcount-1gb/full-space");
}

/// The same three profiles on small jobs, for the exhaustive sweep
/// (whose cost is the full configuration cross-product).
fn tiny_jobs() -> Vec<(&'static str, JobSpec)> {
    vec![
        ("tiny-wordcount", WorkloadSpec::wordcount_gb(1).tiny_job(9, 4096)),
        ("tiny-sort", WorkloadSpec::Sort100.tiny_job(12, 8192)),
        ("tiny-query", WorkloadSpec::QueryUservisits.tiny_job(10, 2048)),
    ]
}

#[test]
fn parallel_exhaustive_matches_serial_exactly() {
    let catalog = PriceCatalog::aws_2020();
    for (jname, job) in tiny_jobs() {
        for (pname, platform) in platforms() {
            let space = reduced_space(&job, &platform);
            let astra = Astra::new(platform.clone(), catalog, Strategy::ExactCsp);
            let objectives = [
                Objective::fastest(),
                Objective::cheapest(),
                astra
                    .plan_with_space(&job, Objective::cheapest(), &space)
                    .map(|p| Objective::min_cost_with_deadline_s(p.predicted_jct_s() * 1.5))
                    .unwrap_or_else(|_| Objective::fastest()),
            ];
            for objective in objectives {
                let serial =
                    solve_exhaustive_serial(&job, &platform, &catalog, &space, objective);
                for threads in [1, 2, 8] {
                    pin_threads(threads);
                    let parallel = solve_exhaustive(&job, &platform, &catalog, &space, objective);
                    assert_eq!(
                        serial, parallel,
                        "{jname}/{pname}/{objective}/threads={threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn planned_cost_and_jct_are_thread_count_invariant() {
    // Acceptance check: exact Money equality of predicted_cost() and exact
    // predicted_jct_s() bits at 1, 2, and 8 threads, every workload,
    // every platform, both solver directions.
    let catalog = PriceCatalog::aws_2020();
    for (jname, job) in jobs() {
        for (pname, platform) in platforms() {
            let space = reduced_space(&job, &platform);
            let astra = Astra::new(platform.clone(), catalog, Strategy::ExactCsp);
            let objectives = [Objective::fastest(), Objective::cheapest()];
            for objective in objectives {
                pin_threads(1);
                let reference = astra
                    .plan_with_space(&job, objective, &space)
                    .unwrap_or_else(|e| panic!("{jname}/{pname}/{objective}: {e}"));
                for threads in [2, 8] {
                    pin_threads(threads);
                    let plan = astra.plan_with_space(&job, objective, &space).unwrap();
                    let context = format!("{jname}/{pname}/{objective}/threads={threads}");
                    assert_eq!(plan.spec, reference.spec, "plan spec ({context})");
                    assert_eq!(
                        plan.predicted_cost(),
                        reference.predicted_cost(),
                        "cost ({context})"
                    );
                    assert_eq!(
                        plan.predicted_jct_s().to_bits(),
                        reference.predicted_jct_s().to_bits(),
                        "jct ({context})"
                    );
                }
            }
        }
    }
}
