//! Service-level lifecycle suite: a heterogeneous submission mix must
//! drive every job through legal lifecycle edges to a terminal state,
//! with results bit-identical to direct `Astra` library calls, and the
//! session cache must observably absorb repeated planning work.

mod service_support;

use astra::pricing::Money;
use astra::service::{JobStatus, ServiceConfig, ServiceDaemon};
use astra::telemetry::{InMemoryRecorder, Telemetry};
use service_support::{assert_matches_reference, mixed_requests, reference};
use std::sync::Arc;

#[test]
fn mixed_submissions_reach_done_with_library_identical_results() {
    let requests = mixed_requests(12);
    let daemon = ServiceDaemon::start(ServiceConfig::default().with_workers(4));
    let handle = daemon.handle();

    let ids: Vec<_> = requests.iter().map(|r| handle.submit(r.clone())).collect();
    // Ids are dense in submission order, starting at 1.
    for (index, &id) in ids.iter().enumerate() {
        assert_eq!(id, index as u64 + 1);
    }

    for (&id, request) in ids.iter().zip(&requests) {
        let snap = handle.await_done(id).expect("known id");
        snap.check_history().unwrap();
        assert_eq!(&snap.request, request, "stored request mutated");
        assert_matches_reference(&snap, &reference(request), "lifecycle mix");

        // The lifecycle passed through the documented phases.
        let states: Vec<JobStatus> = snap.history.iter().map(|&(s, _)| s).collect();
        assert_eq!(states[0], JobStatus::Accepted);
        assert!(states.contains(&JobStatus::Planned));
        assert_eq!(
            states.contains(&JobStatus::Simulating),
            request.sim.replications > 0,
            "Simulating phase presence, job {id}"
        );
        assert!(snap.metrics.total_ns > 0);
        assert!(snap.metrics.plan_ns > 0);
    }

    // Four job families × 12 jobs: plenty of keyed session reuse.
    let stats = handle.cache_stats();
    assert!(stats.hits > 0, "no session reuse: {stats:?}");
    assert!(stats.hit_rate() > 0.0);
    assert!(handle.jobs().iter().any(|s| s.session_cache_hit));
}

#[test]
fn every_refusal_is_a_rejected_snapshot_with_a_reason() {
    let daemon = ServiceDaemon::start(ServiceConfig::default());
    let handle = daemon.handle();

    // Invalid spec.
    let mut invalid = mixed_requests(1).remove(0);
    invalid.job.object_sizes_mb[0] = f64::NAN;
    let id = handle.submit(invalid);
    let snap = handle.await_done(id).unwrap();
    assert_eq!(snap.status, JobStatus::Rejected);
    snap.check_history().unwrap();
    assert!(snap.reason.as_ref().unwrap().contains("invalid size"));

    // Infeasible objective.
    let mut hopeless = mixed_requests(1).remove(0);
    hopeless.objective = astra::core::Objective::MinimizeTime {
        budget: Money::from_nanos(1),
    };
    let id = handle.submit(hopeless);
    let snap = handle.await_done(id).unwrap();
    assert_eq!(snap.status, JobStatus::Rejected);
    assert!(snap.reason.as_ref().unwrap().contains("no configuration"));

    // Unparsable JSON body.
    let id = handle.submit_json("{definitely not json");
    let snap = handle.await_done(id).unwrap();
    assert_eq!(snap.status, JobStatus::Rejected);
    snap.check_history().unwrap();
    assert!(snap.reason.as_ref().unwrap().contains("invalid JSON"));

    // Rejections are terminal immediately: no worker involvement.
    for snap in handle.jobs() {
        assert_eq!(snap.status, JobStatus::Rejected);
        assert_eq!(snap.history.len(), 2, "Accepted then Rejected only");
    }
}

#[test]
fn shutdown_drains_the_queue_to_terminal_states() {
    let requests = mixed_requests(6);
    let daemon = ServiceDaemon::start(ServiceConfig::default().with_workers(1));
    let handle = daemon.handle();
    for request in &requests {
        handle.submit(request.clone());
    }
    let snapshots = daemon.shutdown();
    assert_eq!(snapshots.len(), requests.len());
    for snap in &snapshots {
        assert!(snap.is_terminal(), "job {} left at {}", snap.id, snap.status);
        assert_eq!(snap.status, JobStatus::Done);
        snap.check_history().unwrap();
    }
}

#[test]
fn service_counters_and_cache_telemetry_are_recorded() {
    let recorder = Arc::new(InMemoryRecorder::new());
    let telemetry = Telemetry::new(recorder.clone());
    let requests = mixed_requests(8);
    let daemon = ServiceDaemon::start(
        ServiceConfig::default()
            .with_workers(2)
            .with_telemetry(telemetry),
    );
    let handle = daemon.handle();
    let ids: Vec<_> = requests.iter().map(|r| handle.submit(r.clone())).collect();
    for id in ids {
        assert_eq!(handle.await_done(id).unwrap().status, JobStatus::Done);
    }
    // One bad one for the rejected counter.
    let mut bad = mixed_requests(1).remove(0);
    bad.name.clear();
    let id = handle.submit(bad);
    assert_eq!(handle.await_done(id).unwrap().status, JobStatus::Rejected);
    drop(daemon);

    assert_eq!(recorder.counter_value("service.submitted"), 9);
    assert_eq!(recorder.counter_value("service.rejected"), 1);
    assert_eq!(recorder.counter_value("service.planned"), 8);
    assert_eq!(recorder.counter_value("service.completed"), 8);
    assert_eq!(recorder.counter_value("service.failed"), 0);

    // The session cache reports its activity, and the in-memory stats
    // agree with the telemetry counters exactly.
    let stats = handle.cache_stats();
    assert!(stats.hits > 0);
    assert_eq!(recorder.counter_value("service.cache.hits"), stats.hits);
    assert_eq!(recorder.counter_value("service.cache.misses"), stats.misses);

    // Spans for the submit and worker paths were emitted.
    let spans = recorder.spans();
    assert!(spans.iter().any(|s| s.name.as_ref() == "service.submit"));
    assert!(spans.iter().any(|s| s.name.as_ref() == "service.job"));
}
