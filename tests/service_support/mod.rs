//! Shared fixtures for the service-level test suite: a deterministic
//! heterogeneous request mix, and the serial library reference every
//! service result must match bit-for-bit.
#![allow(dead_code)] // each test binary uses a subset of the helpers

use astra::core::{Astra, Objective, Plan, Strategy};
use astra::faas::{derive_seed, SimConfig, SimReport};
use astra::mapreduce::simulate;
use astra::model::{JobSpec, Platform, WorkloadProfile};
use astra::pricing::PriceCatalog;
use astra::service::{JobRequest, JobSnapshot, JobStatus, SimOptions};
use astra::workloads::WorkloadSpec;

/// The platform every service test plans and simulates against —
/// identical to `ServiceConfig::default()`.
pub fn platform() -> Platform {
    Platform::aws_lambda()
}

/// A library planner configured exactly like the default daemon.
pub fn library_planner() -> Astra {
    Astra::new(platform(), PriceCatalog::aws_2020(), Strategy::ExactCsp)
}

/// A deterministic heterogeneous mix of `n` feasible requests: four job
/// families (two uniform shapes, 1 GB wordcount, a few large objects)
/// crossed with five objectives (fastest, cheapest, two budgets, a
/// deadline derived from the cheapest plan) and varying noise/seed/
/// replication settings — including plan-only requests.
pub fn mixed_requests(n: usize) -> Vec<JobRequest> {
    let planner = library_planner();
    let families: Vec<JobSpec> = vec![
        JobSpec::uniform("mix-small", 6, 2.0, WorkloadProfile::uniform_test()),
        JobSpec::uniform("mix-wide", 10, 1.0, WorkloadProfile::uniform_test()),
        WorkloadSpec::wordcount_gb(1).into_job(),
        JobSpec::uniform("mix-chunky", 4, 8.0, WorkloadProfile::uniform_test()),
    ];
    (0..n)
        .map(|i| {
            let job = families[i % families.len()].clone();
            let objective = match i % 5 {
                0 => Objective::fastest(),
                1 => Objective::cheapest(),
                2 => Objective::min_time_with_budget_dollars(4.0),
                3 => {
                    let cheapest = planner.plan(&job, Objective::cheapest()).unwrap();
                    Objective::min_cost_with_deadline_s(cheapest.predicted_jct_s() * 1.5)
                }
                _ => Objective::min_time_with_budget_dollars(8.0),
            };
            let sim = SimOptions {
                noise_cv: 0.1 * (i % 3) as f64,
                seed: 1000 + i as u64,
                replications: (i % 3) as u32,
            };
            JobRequest::new(format!("mix-{i}"), job, objective)
                .with_tenant(format!("tenant-{}", i % 2))
                .with_sim(sim)
        })
        .collect()
}

/// What the plain library API produces for one request, run serially:
/// the plan over the full space, then one `simulate()` per replication
/// with the service's exact seed derivation.
pub struct Reference {
    /// The library plan.
    pub plan: Plan,
    /// One report per replication, in replication order.
    pub reports: Vec<SimReport>,
}

/// Compute the serial library reference for `request`.
pub fn reference(request: &JobRequest) -> Reference {
    let plan = library_planner()
        .plan(&request.job, request.objective)
        .expect("mixed_requests are feasible");
    let reports = (0..request.sim.replications as u64)
        .map(|rep| {
            let config = SimConfig::deterministic(platform())
                .with_noise(request.sim.noise_cv, derive_seed(request.sim.seed, rep));
            simulate(&request.job, &plan, config).expect("reference simulation")
        })
        .collect();
    Reference { plan, reports }
}

/// Assert a service snapshot is `Done` and bit-identical to the serial
/// library reference: same plan spec, same predicted JCT bits and exact
/// cost, and per-replication simulated JCT/cost/events equal.
pub fn assert_matches_reference(snap: &JobSnapshot, reference: &Reference, context: &str) {
    assert_eq!(
        snap.status,
        JobStatus::Done,
        "job {} not Done ({:?}) [{context}]",
        snap.id,
        snap.reason
    );
    let plan = snap.plan.as_ref().expect("Done jobs carry a plan");
    assert_eq!(plan.spec, reference.plan.spec, "plan spec, job {} [{context}]", snap.id);
    assert_eq!(
        plan.predicted_jct_s.to_bits(),
        reference.plan.predicted_jct_s().to_bits(),
        "predicted JCT bits, job {} [{context}]",
        snap.id
    );
    assert_eq!(
        plan.predicted_cost,
        reference.plan.predicted_cost(),
        "predicted cost, job {} [{context}]",
        snap.id
    );
    if snap.request.sim.replications == 0 {
        assert!(snap.sim.is_none(), "plan-only job {} has sim [{context}]", snap.id);
        return;
    }
    let sim = snap.sim.as_ref().expect("simulated jobs carry results");
    assert_eq!(sim.jct_s.len(), reference.reports.len(), "job {} [{context}]", snap.id);
    for (rep, report) in reference.reports.iter().enumerate() {
        assert_eq!(
            sim.jct_s[rep].to_bits(),
            report.jct_s().to_bits(),
            "sim JCT bits, job {} rep {rep} [{context}]",
            snap.id
        );
        assert_eq!(
            sim.cost[rep],
            report.total_cost(),
            "sim cost, job {} rep {rep} [{context}]",
            snap.id
        );
        assert_eq!(
            sim.events[rep], report.events,
            "sim events, job {} rep {rep} [{context}]",
            snap.id
        );
    }
}
