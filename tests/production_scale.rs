//! Production-N planning and simulation guarantees.
//!
//! Two families:
//!
//! * **Collapsed-DAG equivalence at scale.** The bundled configuration
//!   space plus the accelerated solver path (dominance-pruned SoA DAG +
//!   backward potentials) must answer bit-identically to the unpruned
//!   plain CSP over the same space — checked on a restricted tier slice
//!   at `N = 10^4` on every push, and on the full 46-tier space at
//!   `N = 10^5` behind `--ignored` (CI runs it in release as the
//!   production-scale smoke, with a wall-clock budget).
//!
//! * **Arena reuse leaks no state.** Simulation results must be
//!   bit-identical whether an engine is built on a brand-new thread
//!   (fresh arena) or reuses a prior case's recycled scratch — in any
//!   case order, at any `RAYON_NUM_THREADS`.

use astra::core::solver::{solve_on_dag, solve_on_dag_with_potentials};
use astra::core::{
    ConfigSpace, Objective, PlannerDag, PlannerPotentials, PruneConfig,
    Strategy as SolverStrategy,
};
use astra::faas::{SimConfig, SimReport};
use astra::mapreduce::{simulate, simulate_batch, SimCase};
use astra::model::{JobConfig, JobSpec, Platform, WorkloadProfile};
use astra::pricing::{Money, PriceCatalog};
use astra_experiments::harness;
use proptest::prelude::*;

/// The production-N fixture: `n` small objects with an
/// aggregation-shaped profile. Mirrors `astra_bench::production_job` —
/// `uniform_test`'s ratio-1.0 profile funnels the whole input through
/// the final reducer and is genuinely infeasible at `N = 10^5`, so
/// production-scale planning is exercised on a shape where mid-range
/// configurations survive.
fn production_job(n: usize) -> JobSpec {
    let profile = WorkloadProfile {
        name: "aggregation".to_string(),
        map_secs_per_mb_128: 0.05,
        reduce_secs_per_mb_128: 0.05,
        coord_secs_per_mb_128: 0.001,
        shuffle_ratio: 0.2,
        reduce_ratio: 0.05,
        state_object_mb: 1.0,
        single_pass_reduce: false,
    };
    JobSpec::uniform("prod-scale", n, 1.0, profile)
}

/// Accelerated (pruned SoA + potentials) vs plain unpruned CSP over one
/// bundled space, across a budget/deadline grid anchored at the
/// unconstrained optima.
fn assert_collapsed_equivalence(job: &JobSpec, platform: &Platform, space: &ConfigSpace) {
    let catalog = PriceCatalog::aws_2020();
    let full = PlannerDag::build_with(job, platform, &catalog, space, PruneConfig::off());
    let pruned = PlannerDag::build_with(job, platform, &catalog, space, PruneConfig::on());
    let potentials = PlannerPotentials::compute(&pruned);
    let tel = astra::telemetry::Telemetry::disabled();

    let cheapest = solve_on_dag(&full, Objective::cheapest(), SolverStrategy::ExactCsp)
        .expect("production job must be feasible");
    let fastest = solve_on_dag(&full, Objective::fastest(), SolverStrategy::ExactCsp).unwrap();
    let ev = |c: &JobConfig| {
        let e = astra::model::evaluate(job, platform, c, &catalog).unwrap();
        (e.jct_s(), e.total_cost())
    };
    let (t_cheap, c_cheap) = ev(&cheapest);
    let (t_fast, c_fast) = ev(&fastest);

    let mut objectives = vec![Objective::cheapest(), Objective::fastest()];
    for frac in [0.0, 0.25, 0.5, 1.0] {
        let budget = c_cheap.nanos() as f64 + (c_fast.nanos() - c_cheap.nanos()) as f64 * frac;
        objectives.push(Objective::MinimizeTime {
            budget: Money::from_nanos(budget as i128),
        });
        objectives.push(Objective::MinimizeCost {
            deadline_s: t_fast + (t_cheap - t_fast) * frac,
        });
    }
    for objective in objectives {
        let fast = solve_on_dag_with_potentials(
            &pruned,
            &potentials,
            objective,
            SolverStrategy::ExactCsp,
            &tel,
        );
        let plain = solve_on_dag(&full, objective, SolverStrategy::ExactCsp);
        assert_eq!(fast, plain, "collapsed build diverged at {objective}");
    }
}

/// The every-push slice: `N = 10^4` on a 6-tier cut of the platform.
/// Pruning must actually fire, and the accelerated path must agree with
/// the unpruned reference across the bound grid.
#[test]
fn n1e4_collapsed_slice_matches_unpruned() {
    let job = production_job(10_000);
    let platform = Platform::aws_lambda();
    let mut space = ConfigSpace::bundled(&job, &platform);
    space.memory_tiers_mb = vec![128, 512, 1024, 1792, 3008, 10240];
    let catalog = PriceCatalog::aws_2020();
    let pruned = PlannerDag::build_with(&job, &platform, &catalog, &space, PruneConfig::on());
    assert!(
        pruned.prune_stats().total() > 0,
        "dominance pruning must fire at production N"
    );
    assert!(
        pruned.soa().bundles_collapsed() > 0,
        "the bundled space must actually collapse k_M classes at N=10^4"
    );
    assert_collapsed_equivalence(&job, &platform, &space);
}

/// The production-scale smoke (CI runs this in release with
/// `--ignored`): the full 46-tier bundled build at `N = 10^5` plans
/// under a wall-clock budget and agrees with the unpruned reference on
/// the unconstrained optima plus one bound of each kind. The budget is
/// far looser than the <1 s laptop target in `BENCH_planner.json` —
/// shared runners are slow and noisy — but still catches a return to
/// the quadratic regime, which is minutes, not seconds.
#[test]
#[ignore = "production-scale: run explicitly (CI smoke runs it in release)"]
fn n1e5_collapsed_planning_within_budget() {
    let job = production_job(100_000);
    let platform = Platform::aws_lambda();
    let space = ConfigSpace::bundled(&job, &platform);
    let catalog = PriceCatalog::aws_2020();

    let start = std::time::Instant::now();
    let pruned = PlannerDag::build_with(&job, &platform, &catalog, &space, PruneConfig::on());
    let potentials = PlannerPotentials::compute(&pruned);
    let tel = astra::telemetry::Telemetry::disabled();
    let cheapest = solve_on_dag_with_potentials(
        &pruned,
        &potentials,
        Objective::cheapest(),
        SolverStrategy::ExactCsp,
        &tel,
    )
    .expect("N=1e5 production job must be feasible");
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs_f64() < 15.0,
        "N=1e5 build+potentials+solve took {elapsed:?} (budget 15 s)"
    );

    // Equivalence against the unpruned build on the same space.
    let full = PlannerDag::build_with(&job, &platform, &catalog, &space, PruneConfig::off());
    for objective in [Objective::cheapest(), Objective::fastest()] {
        let fast = solve_on_dag_with_potentials(
            &pruned,
            &potentials,
            objective,
            SolverStrategy::ExactCsp,
            &tel,
        );
        let plain = solve_on_dag(&full, objective, SolverStrategy::ExactCsp);
        assert_eq!(fast, plain, "diverged at {objective}");
    }
    let e = astra::model::evaluate(&job, &platform, &cheapest, &catalog).unwrap();
    assert!(e.jct_s().is_finite() && e.total_cost() > Money::ZERO);
}

// ---------------------------------------------------------------------
// Arena reuse.
// ---------------------------------------------------------------------

fn assert_reports_identical(a: &SimReport, b: &SimReport, context: &str) {
    assert_eq!(a.makespan, b.makespan, "makespan ({context})");
    assert_eq!(a.total_cost(), b.total_cost(), "cost ({context})");
    assert_eq!(a.invoices, b.invoices, "invoices ({context})");
    assert_eq!(a.events, b.events, "event count ({context})");
    assert_eq!(a.ledger.gets, b.ledger.gets, "gets ({context})");
    assert_eq!(a.ledger.puts, b.ledger.puts, "puts ({context})");
}

/// Deterministic Fisher–Yates over an LCG so shuffles replay under
/// proptest shrinking.
fn shuffle_order(len: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..len).collect();
    let mut state = seed | 1;
    for i in (1..len).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arena reuse leaks no state: randomized noisy cases, simulated
    /// through the arena-reusing batch and serial paths in a shuffled
    /// order, match a reference where every engine is built on a fresh
    /// thread (guaranteed-empty arena) — bit-for-bit, at 1, 2 and 8
    /// rayon threads.
    #[test]
    fn arena_reuse_is_invisible(
        cases in proptest::collection::vec((0.0f64..0.3, 0u64..u64::MAX), 3..7),
        shuffle_seed in 0u64..u64::MAX,
    ) {
        let job = astra::workloads::WorkloadSpec::wordcount_gb(1).into_job();
        let plan = harness::astra().plan(&job, Objective::fastest()).unwrap();
        let configs: Vec<SimConfig> = cases
            .iter()
            .map(|&(cv, seed)| {
                SimConfig::deterministic(Platform::aws_lambda()).with_noise(cv, seed)
            })
            .collect();

        // Reference: each case on its own brand-new thread, so every
        // engine starts from `SimArena::fresh` by construction.
        let fresh: Vec<SimReport> = std::thread::scope(|scope| {
            configs
                .iter()
                .map(|c| {
                    scope
                        .spawn(|| simulate(&job, &plan, c.clone()).unwrap())
                        .join()
                        .unwrap()
                })
                .collect()
        });

        let order = shuffle_order(configs.len(), shuffle_seed);

        // Serial loop on this thread: consecutive cases hand their
        // recycled arena to the next one.
        for &i in &order {
            let report = simulate(&job, &plan, configs[i].clone()).unwrap();
            assert_reports_identical(&report, &fresh[i], &format!("serial reuse, case {i}"));
        }

        // Batch path at several thread counts, still shuffled.
        for threads in ["1", "2", "8"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let batch: Vec<SimCase<'_>> = order
                .iter()
                .map(|&i| SimCase {
                    job: &job,
                    plan: &plan,
                    config: configs[i].clone(),
                })
                .collect();
            let reports = simulate_batch(batch);
            for (slot, &i) in order.iter().enumerate() {
                assert_reports_identical(
                    reports[slot].as_ref().unwrap(),
                    &fresh[i],
                    &format!("batch case {i} @{threads} threads"),
                );
            }
        }
        std::env::remove_var("RAYON_NUM_THREADS");
    }
}
